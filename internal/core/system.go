// Package core implements the OPTIQUE system: the end-to-end OBSSDI
// pipeline of the paper. A System is deployed over an ontology, a
// mapping set, and the static catalog; users register STARQL diagnostic
// tasks, and the system (i) enriches them with the ontology
// (PerfectRef), (ii) unfolds them into SQL(+) fleets via the mappings,
// and (iii) executes them continuously on the distributed ExaStream
// runtime, emitting CONSTRUCT triples whenever a window satisfies the
// HAVING condition.
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/exastream"
	"repro/internal/obda/mapping"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/starql"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// AnswerSink receives the CONSTRUCT triples a task emits for one window.
// Implementations must be safe for concurrent use.
type AnswerSink func(taskID string, windowEnd int64, triples []rdf.Triple)

// Config sets up the runtime.
type Config struct {
	// Nodes is the worker count of the embedded cluster (default 1).
	Nodes int
	// Placement selects the scheduler strategy.
	Placement cluster.Placement
	// Engine options are applied to each node's ExaStream instance.
	Engine exastream.Options
	// PartitionColumn enables partitioned stream routing (see cluster).
	PartitionColumn string
	// Translate tunes enrichment/unfolding.
	Translate starql.Options
	// InterpretHaving evaluates HAVING conditions with the tree-walking
	// reference interpreter instead of the compiled matcher
	// (starql.CompileHaving). Ablation/debugging switch, the HAVING
	// analogue of Engine.InterpretExprs.
	InterpretHaving bool
	// Vectorized selects columnar batch execution: it is forwarded to
	// each node's engine (Engine.Vectorized) and routes the HAVING
	// sequence builder through its columnar path. The zero value is on;
	// VecOff here or on Engine.Vectorized turns both off.
	Vectorized exastream.VecMode

	// Backpressure selects the full-queue ingest policy (see cluster).
	Backpressure cluster.Backpressure
	// MaxRestarts caps supervisor restarts per worker before failover
	// (0 = default, negative = no restarts).
	MaxRestarts int
	// QuarantineAfter suspends a task's continuous query after this many
	// consecutive failed window executions. 0 disables.
	QuarantineAfter int
	// Faults injects worker failures for chaos testing (internal/faults).
	Faults cluster.FaultInjector
	// TraceCapacity bounds how many query traces the system retains
	// (default 64; oldest evicted first).
	TraceCapacity int
	// CheckpointEvery enables pulse-aligned checkpoint/restore with
	// exactly-once window delivery (see cluster.Options.CheckpointEvery).
	// 0 disables recovery.
	CheckpointEvery int
	// ReplayLogCap bounds each node's retained-tuple replay log (see
	// cluster.Options.ReplayLogCap).
	ReplayLogCap int

	// MemBudget is the default per-task window-state byte budget. Each
	// registration runs starql.AnalyzeMemory on the parsed query:
	// bounded-memory tasks get a derived budget (window footprint times
	// headroom, never below this default), unbounded ones get exactly
	// this cap. 0 disables budget enforcement.
	MemBudget int64
	// NodeMemBudget caps the sum of admitted task budgets per worker
	// node (see cluster.Options.NodeMemBudget). 0 disables.
	NodeMemBudget int64
	// TenantQuota enables per-tenant admission control; tasks namespace
	// tenants by id prefix (see cluster.TenantOf). Zero value disables.
	TenantQuota cluster.TenantQuota

	// FlightRecorder is the per-node flight-recorder capacity in events
	// (see cluster.Options.FlightRecorder); the /events endpoint and
	// System.Events dump the merged timeline. 0 disables recording.
	FlightRecorder int

	// Transport selects how the routing layer reaches worker nodes:
	// cluster.TransportChannel (default, in-process) or
	// cluster.TransportTCP (framed loopback sessions with heartbeat
	// failure detection and suspicion-triggered failover — see
	// docs/transport.md).
	Transport cluster.TransportKind
	// Listen is the TCP transport's listen address (default
	// "127.0.0.1:0"); ignored by the channel transport.
	Listen string
	// TransportTuning overrides the TCP transport's reliability clocks;
	// zero fields resolve to defaults.
	TransportTuning transport.Tuning

	// Analyze turns on optimizer statistics collection on every node:
	// ANALYZE passes over the static catalog plus windowed stream
	// samples and observed-cardinality feedback. Queries still execute
	// as-written; EXPLAIN ANALYZE gains estimated-vs-observed rows.
	Analyze bool
	// Optimize enables the statistics-driven cost-based planner end to
	// end: unfolding applies the declared exact-predicate and FK
	// constraints (provably-empty fleet branches dropped, redundant
	// FK joins eliminated), and each node's engine rewrites cached
	// plans by estimated cost (index-scan choice, lookup-join
	// reordering). Implies Analyze. Off, translation and execution are
	// exactly as-written — the differential oracle.
	Optimize bool
}

// System is one OPTIQUE deployment.
type System struct {
	cfg        Config
	tbox       *ontology.TBox
	mappings   *mapping.Set
	catalog    *relation.Catalog
	cluster    *cluster.Cluster
	translator *starql.Translator

	reg    *telemetry.Registry // system-level metrics (translation stages)
	tracer *telemetry.Tracer   // one trace per task: rewrite → unfold → register → window-exec

	// HAVING-stage instruments, resolved once (hot path: one atomic op
	// per site). window_ns is the whole per-window HAVING stage.
	havingEvals    *telemetry.Counter
	havingMatches  *telemetry.Counter
	havingCompiled *telemetry.Counter
	havingNS       *telemetry.Histogram

	mu       sync.Mutex
	streams  map[string]stream.Schema
	builders map[string]*starql.SequenceBuilder
	tasks    map[string]*Task
	derived  map[string]string // task/query name -> derived stream
	feeder   *feeder
}

// Task is one registered diagnostic task.
type Task struct {
	ID          string
	Query       *starql.Query
	Translation *starql.Translation
	Bindings    []starql.Binding
	Node        int // cluster node hosting the continuous query

	subjects map[string]bool
	sink     AnswerSink
	ring     alertRing
	answers  int64
	windows  int64

	// compiled is the query's HAVING condition lowered by
	// starql.CompileHaving at registration; nil when the query has no
	// HAVING clause or Config.InterpretHaving is set. It lives and dies
	// with the registration record (the query AST is immutable, so unlike
	// window plans there is nothing at runtime that can invalidate it;
	// re-registering recompiles).
	compiled *starql.CompiledHaving
}

// CompiledHaving reports whether the task evaluates its HAVING clause
// with the compiled matcher.
func (t *Task) CompiledHaving() bool { return t.compiled != nil }

// Answers returns the number of CONSTRUCT triples emitted so far.
func (t *Task) Answers() int64 { return atomic.LoadInt64(&t.answers) }

// Windows returns the number of windows evaluated so far.
func (t *Task) Windows() int64 { return atomic.LoadInt64(&t.windows) }

// FleetSize returns the size of the low-level query fleet the task
// replaces (static + per-binding stream queries).
func (t *Task) FleetSize() int {
	return len(t.Translation.StaticFleet) + len(t.Translation.StreamFleet)
}

// NewSystem deploys OPTIQUE over the given assets.
func NewSystem(cfg Config, tbox *ontology.TBox, set *mapping.Set, catalog *relation.Catalog) (*System, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(cfg.TraceCapacity)
	engCfg := cfg.Engine
	if engCfg.Tracer == nil {
		engCfg.Tracer = tracer
	}
	if cfg.Vectorized == exastream.VecOff {
		engCfg.Vectorized = exastream.VecOff
	}
	if cfg.Optimize {
		cfg.Analyze = true
		engCfg.Optimize = true
		// Constraint-driven fleet pruning at translation time; the FK
		// emptiness probes run against the deployment catalog.
		cfg.Translate.Unfold.Prune = true
	}
	if cfg.Analyze {
		engCfg.Analyze = true
	}
	cfg.Engine = engCfg
	cl, err := cluster.New(cluster.Options{
		Nodes:           cfg.Nodes,
		Placement:       cfg.Placement,
		Engine:          engCfg,
		PartitionColumn: cfg.PartitionColumn,
		Backpressure:    cfg.Backpressure,
		MaxRestarts:     cfg.MaxRestarts,
		QuarantineAfter: cfg.QuarantineAfter,
		Faults:          cfg.Faults,
		CheckpointEvery: cfg.CheckpointEvery,
		ReplayLogCap:    cfg.ReplayLogCap,
		MemBudget:       cfg.MemBudget,
		NodeMemBudget:   cfg.NodeMemBudget,
		TenantQuota:     cfg.TenantQuota,
		FlightRecorder:  cfg.FlightRecorder,
		Transport:       cfg.Transport,
		Listen:          cfg.Listen,
		TransportTuning: cfg.TransportTuning,
	}, func(int) *relation.Catalog { return catalog })
	if err != nil {
		return nil, err
	}
	translator := starql.NewTranslator(tbox, set, catalog)
	translator.Metrics = reg
	return &System{
		havingEvals:    reg.Counter("starql.having.evals"),
		havingMatches:  reg.Counter("starql.having.matches"),
		havingCompiled: reg.Counter("starql.having.compiled"),
		havingNS:       reg.Histogram("starql.having.window_ns", telemetry.LatencyBuckets),
		cfg:        cfg,
		tbox:       tbox,
		mappings:   set,
		catalog:    catalog,
		cluster:    cl,
		translator: translator,
		reg:        reg,
		tracer:     tracer,
		streams:    make(map[string]stream.Schema),
		builders:   make(map[string]*starql.SequenceBuilder),
		tasks:      make(map[string]*Task),
		derived:    make(map[string]string),
	}, nil
}

// TBox returns the deployed ontology.
func (s *System) TBox() *ontology.TBox { return s.tbox }

// Mappings returns the deployed mapping set.
func (s *System) Mappings() *mapping.Set { return s.mappings }

// Catalog returns the static catalog.
func (s *System) Catalog() *relation.Catalog { return s.catalog }

// Cluster exposes the underlying runtime (for stats and scenario S2).
func (s *System) Cluster() *cluster.Cluster { return s.cluster }

// DeclareStream registers a stream on every node and prepares its
// sequence builder.
func (s *System) DeclareStream(sc stream.Schema) error {
	if err := s.cluster.DeclareStream(sc); err != nil {
		return err
	}
	b, err := starql.NewSequenceBuilder(sc, s.mappings)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams[sc.Name] = sc
	s.builders[sc.Name] = b
	return nil
}

// RegisterTask parses, translates, and registers a STARQL task; answers
// flow to the sink. It returns the Task handle with the translation
// artefacts (for the conciseness and fleet-size experiments).
func (s *System) RegisterTask(id, starqlText string, sink AnswerSink) (*Task, error) {
	q, err := starql.Parse(starqlText)
	if err != nil {
		return nil, err
	}
	return s.registerParsed(id, q, sink)
}

// SubmitTask registers a task through the gateway's asynchronous
// admission queue: the STARQL text is parsed synchronously (syntax
// errors surface immediately), but translation and placement run on the
// gateway worker. The ticket resolves to the hosting node; a full queue
// fails with cluster.ErrGatewayBusy (pair with cluster.RetryBusy and
// Ticket.WaitContext for bounded admission under load).
func (s *System) SubmitTask(id, starqlText string, sink AnswerSink) (*cluster.Ticket, error) {
	q, err := starql.Parse(starqlText)
	if err != nil {
		return nil, err
	}
	return s.cluster.Gateway().SubmitFunc(id, func() (int, error) {
		task, err := s.registerParsed(id, q, sink)
		if err != nil {
			return -1, err
		}
		return task.Node, nil
	})
}

func (s *System) registerParsed(id string, q *starql.Query, sink AnswerSink) (*Task, error) {
	s.mu.Lock()
	if _, dup := s.tasks[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: task %q already registered", id)
	}
	streamName := q.Streams[0].Name
	builder, ok := s.builders[streamName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: stream %q not declared", streamName)
	}

	// One trace per task covers the whole query lifecycle: the
	// translator adds rewrite/unfold spans, registration is recorded
	// here, and the hosting engine appends a span per window execution.
	trace := s.tracer.Start(id)
	topts := s.cfg.Translate
	topts.Trace = trace
	tl, err := s.translator.Translate(q, topts)
	if err != nil {
		return nil, err
	}
	bindings, err := s.translator.EvalBindings(tl)
	if err != nil {
		return nil, err
	}
	task := &Task{
		ID: id, Query: q, Translation: tl, Bindings: bindings,
		subjects: map[string]bool{}, sink: sink,
	}
	// Compile the HAVING condition once per registered query; every
	// window evaluation reuses the program (DESIGN.md §10). The
	// interpreter remains the reference path behind InterpretHaving.
	if q.Having != nil && !s.cfg.InterpretHaving {
		task.compiled = starql.CompileHaving(q.Having, q.Aggregates)
		s.havingCompiled.Inc()
	}
	for _, b := range bindings {
		for _, term := range b {
			if term.IsIRI() {
				task.subjects[term.Value] = true
			}
		}
	}

	// The runtime query materialises the raw window contents; HAVING
	// evaluation happens in the sink via the sequence builder (the
	// paper's window-partitioning UDF).
	stmt := sql.NewSelect()
	stmt.Items = []sql.SelectItem{{Star: true}}
	stmt.From = []*sql.TableRef{{
		Table: streamName, IsStream: true, Alias: "w",
		Window: &sql.WindowSpec{RangeMS: tl.Window.RangeMS, SlideMS: tl.Window.SlideMS},
	}}
	rspan := trace.StartSpan("register")
	// Classify the task's memory appetite at registration ("decide
	// cheaply at admission", not after the OOM): bounded tasks get a
	// budget derived from their window footprint, unbounded ones are
	// capped at the configured default and will degrade under pressure.
	var budget int64
	if s.cfg.MemBudget > 0 {
		analysis := starql.AnalyzeMemory(q)
		budget = analysis.Budget(s.cfg.MemBudget)
		rspan.SetAttr("mem_class", analysis.Class.String()).
			SetAttr("mem_budget", budget)
	}
	node, err := s.cluster.RegisterWith(id, stmt, tl.Pulse, s.windowSink(task, builder), cluster.RegisterOptions{Budget: budget})
	if err != nil {
		rspan.SetAttr("error", err.Error())
		rspan.End()
		return nil, err
	}
	rspan.SetAttr("node", node).
		SetAttr("static_fleet", len(tl.StaticFleet)).
		SetAttr("stream_fleet", len(tl.StreamFleet)).
		SetAttr("bindings", len(bindings))
	rspan.End()
	task.Node = node

	s.mu.Lock()
	s.tasks[id] = task
	s.mu.Unlock()
	return task, nil
}

// windowSink adapts ExaStream window results into STARQL semantics:
// build the StdSeq sequence, evaluate HAVING per binding, emit CONSTRUCT
// triples.
func (s *System) windowSink(task *Task, builder *starql.SequenceBuilder) exastream.Sink {
	vectorized := s.cfg.Engine.Vectorized == exastream.VecOn
	return func(_ string, windowEnd int64, _ relation.Schema, rows []relation.Tuple) {
		atomic.AddInt64(&task.windows, 1)
		if len(rows) == 0 {
			return
		}
		batch := stream.Batch{End: windowEnd, Rows: rows}
		subjects := task.subjects
		if len(subjects) == 0 {
			subjects = nil
		}
		var seq *starql.Sequence
		var err error
		if vectorized {
			seq, err = builder.BuildColumnar(batch, subjects)
		} else {
			seq, err = builder.Build(batch, subjects)
		}
		if err != nil || seq.Len() == 0 {
			return
		}
		var triples []rdf.Triple
		having := task.Query.Having
		var hstart time.Time
		if having != nil {
			hstart = time.Now()
		}
		for _, binding := range task.Bindings {
			if having != nil {
				var ok bool
				if task.compiled != nil {
					ok, err = task.compiled.Eval(seq, binding)
				} else {
					ok, err = starql.EvalHaving(having, seq, binding, task.Query.Aggregates)
				}
				s.havingEvals.Inc()
				if err != nil || !ok {
					continue
				}
				s.havingMatches.Inc()
			}
			triples = append(triples, constructTriples(task.Query, binding)...)
		}
		if having != nil {
			s.havingNS.Observe(float64(time.Since(hstart).Nanoseconds()))
		}
		if len(triples) > 0 {
			atomic.AddInt64(&task.answers, int64(len(triples)))
			for _, tr := range triples {
				task.ring.add(Alert{TaskID: task.ID, WindowEnd: windowEnd, Triple: tr})
			}
			if task.sink != nil {
				task.sink(task.ID, windowEnd, triples)
			}
			s.forwardAnswers(task.Query.Name, windowEnd, triples)
		}
	}
}

// constructTriples instantiates the CONSTRUCT template under a binding.
func constructTriples(q *starql.Query, binding starql.Binding) []rdf.Triple {
	resolve := func(n starql.Node) (rdf.Term, bool) {
		if !n.IsVar() {
			return n.Term, true
		}
		t, ok := binding[n.Var]
		return t, ok
	}
	var out []rdf.Triple
	for _, tp := range q.Construct {
		sub, ok1 := resolve(tp.S)
		if !ok1 {
			continue
		}
		if tp.TypeAtom {
			cls, ok := resolve(tp.P)
			if !ok {
				continue
			}
			out = append(out, rdf.NewTriple(sub, rdf.NewIRI(rdf.RDFType), cls))
			continue
		}
		pred, ok2 := resolve(tp.P)
		if !ok2 || !pred.IsIRI() {
			continue
		}
		var obj rdf.Term
		if tp.NoObject {
			obj = rdf.NewBoolean(true)
		} else {
			var ok3 bool
			obj, ok3 = resolve(tp.O)
			if !ok3 {
				continue
			}
		}
		out = append(out, rdf.NewTriple(sub, pred, obj))
	}
	return out
}

// Unregister removes a task from the runtime.
func (s *System) Unregister(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tasks[id]; !ok {
		return fmt.Errorf("core: unknown task %q", id)
	}
	if err := s.cluster.Unregister(id); err != nil {
		return err
	}
	delete(s.tasks, id)
	return nil
}

// Task returns a registered task by id.
func (s *System) Task(id string) (*Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	return t, ok
}

// TaskIDs lists registered tasks.
func (s *System) TaskIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Ingest pushes one measurement into a stream.
func (s *System) Ingest(streamName string, el stream.Timestamped) error {
	return s.cluster.Ingest(streamName, el)
}

// Flush drains the runtime (end of replay). With derived streams
// enabled, flushing a producer may emit answers that feed downstream
// tasks, so the drain loops to a fixpoint.
func (s *System) Flush() error {
	for round := 0; round < 8; round++ {
		s.mu.Lock()
		f := s.feeder
		s.mu.Unlock()
		if f != nil {
			f.drain()
		}
		before := s.feedCount()
		if err := s.cluster.Flush(); err != nil {
			return err
		}
		if f == nil || s.feedCount() == before {
			if f != nil {
				f.drain()
				if s.feedCount() != before {
					continue
				}
			}
			return nil
		}
	}
	return s.cluster.Flush()
}

func (s *System) feedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.feeder == nil {
		return 0
	}
	return atomic.LoadInt64(&s.feeder.enqueued)
}

// Close shuts the runtime down.
func (s *System) Close() {
	s.mu.Lock()
	f := s.feeder
	s.mu.Unlock()
	if f != nil {
		f.close()
	}
	s.cluster.Gateway().Close()
	s.cluster.Close()
}

// Stats aggregates cluster statistics.
func (s *System) Stats() []cluster.NodeStats { return s.cluster.Stats() }

// Health summarises the runtime's failure state (node lifecycles,
// restarts, shed/salvaged tuples, quarantined queries).
func (s *System) Health() cluster.Health { return s.cluster.Health() }

// TelemetrySnapshot merges the system registry (translation metrics)
// with the cluster's (supervision counters plus every node's engine
// instruments) into one cluster-wide view.
func (s *System) TelemetrySnapshot() telemetry.Snapshot {
	return telemetry.Merge(s.reg.Snapshot(), s.cluster.TelemetrySnapshot())
}

// Traces returns the retained query lifecycle traces (one per task:
// rewrite → unfold → register → window-exec spans).
func (s *System) Traces() []telemetry.TraceSnapshot { return s.tracer.Snapshots() }

// Trace returns one task's lifecycle trace, if retained.
func (s *System) Trace(id string) *telemetry.Trace { return s.tracer.Trace(id) }

// QueryLags reports every registered task's fleet-wide lag-view row
// (watermark lag, window backlog, budget headroom, degrade state),
// stamped with node and tenant.
func (s *System) QueryLags() []telemetry.QueryLag { return s.cluster.QueryLags() }

// Events dumps the merged flight-recorder timeline across all nodes
// plus the cluster ring. Empty unless Config.FlightRecorder > 0.
func (s *System) Events() []telemetry.Event { return s.cluster.Events() }

// Explain renders a registered task's full pipeline: the STARQL
// window/pulse, rewrite and unfolding statistics, the unfolded SQL(+)
// fleet (static and per-binding stream members), and the runtime
// operator tree of the continuous query actually executing on the
// cluster. With analyze set, the runtime tree carries the observed
// per-operator stats (calls, rows, selectivity, inclusive wall time)
// accumulated across the task's window executions — EXPLAIN ANALYZE.
func (s *System) Explain(taskID string, analyze bool) (string, error) {
	task, ok := s.Task(taskID)
	if !ok {
		return "", fmt.Errorf("core: unknown task %q", taskID)
	}
	tl := task.Translation
	var sb strings.Builder
	fmt.Fprintf(&sb, "== STARQL task %s ==\n", task.ID)
	fmt.Fprintf(&sb, "window: range=%dms slide=%dms", tl.Window.RangeMS, tl.Window.SlideMS)
	if tl.Pulse != nil {
		fmt.Fprintf(&sb, " pulse: start=%dms every=%dms", tl.Pulse.StartMS, tl.Pulse.FrequencyMS)
	}
	sb.WriteByte('\n')
	r, u := tl.RewriteStats, tl.UnfoldStats
	fmt.Fprintf(&sb, "rewrite (PerfectRef): generated=%d result=%d atom_steps=%d reduce_steps=%d\n",
		r.Generated, r.Result, r.AtomSteps, r.ReduceSteps)
	fmt.Fprintf(&sb, "unfold: cqs=%d combinations=%d pruned=%d fleet=%d self_joins_removed=%d unmapped_atoms=%d constraint_pruned=%d fk_joins_removed=%d\n",
		u.CQs, u.Combinations, u.Pruned, u.FleetSize, u.SelfJoinsRemoved, u.UnmappedAtoms,
		u.ConstraintPruned, u.FKJoinsRemoved)
	switch {
	case task.CompiledHaving():
		sb.WriteString("having: compiled matcher\n")
	case task.Query != nil && task.Query.Having != nil:
		sb.WriteString("having: interpreted\n")
	default:
		sb.WriteString("having: none\n")
	}
	fmt.Fprintf(&sb, "bindings: %d\n", len(task.Bindings))
	fmt.Fprintf(&sb, "static fleet (%d members):\n", len(tl.StaticFleet))
	for i, stmt := range tl.StaticFleet {
		fmt.Fprintf(&sb, "  [%d] %s\n", i, stmt.String())
	}
	fmt.Fprintf(&sb, "stream fleet (%d members):\n", len(tl.StreamFleet))
	for i, stmt := range tl.StreamFleet {
		fmt.Fprintf(&sb, "  [%d] %s\n", i, stmt.String())
	}
	sb.WriteString("runtime continuous query:\n")
	text, err := s.cluster.ExplainQuery(task.ID, analyze)
	if err != nil {
		return "", err
	}
	sb.WriteString(text)
	return sb.String(), nil
}

// ServeTelemetry starts the opt-in observability endpoint on addr
// (host:port; port 0 picks one): /metrics serves the merged registry
// snapshot as JSON (or Prometheus text with ?format=prom), /healthz
// readiness, /queries the fleet lag view, /queries/{id}/explain the
// rendered pipeline, /events the flight-recorder timeline, /traces
// the span log, and /debug/pprof/ the Go profiler. It returns the
// bound address; callers own the returned server's shutdown.
func (s *System) ServeTelemetry(addr string) (*telemetry.Server, string, error) {
	return telemetry.Serve(addr, telemetry.HandlerConfig{
		Snapshot: s.TelemetrySnapshot,
		Traces:   s.Traces,
		Queries:  s.QueryLags,
		Explain:  s.Explain,
		Events:   s.Events,
	})
}

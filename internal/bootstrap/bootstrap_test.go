package bootstrap

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/relation"
)

// turbineSchema is a Siemens-style source schema: turbines, assemblies,
// sensors (explicit FK to assemblies, implicit FK to turbines), and a
// measurements stream.
func turbineSchema() Schema {
	return Schema{
		BaseIRI: "http://siemens.com/ontology#",
		DataIRI: "http://siemens.com/data/",
		Tables: []Table{
			{
				Name:       "turbines",
				PrimaryKey: "tid",
				Columns: []Column{
					{"tid", relation.TInt},
					{"model", relation.TString},
					{"serial_no", relation.TString},
				},
			},
			{
				Name:       "assemblies",
				PrimaryKey: "aid",
				Columns: []Column{
					{"aid", relation.TInt},
					{"tid", relation.TInt}, // implicit FK to turbines
					{"name", relation.TString},
				},
			},
			{
				Name:       "sensors",
				PrimaryKey: "sid",
				Columns: []Column{
					{"sid", relation.TInt},
					{"aid", relation.TInt},
					{"kind", relation.TString},
				},
				ForeignKeys: []FK{{Column: "aid", RefTable: "assemblies", RefColumn: "aid"}},
			},
			{
				Name:     "measurements",
				IsStream: true,
				TSCol:    "ts",
				Columns: []Column{
					{"sid", relation.TInt},
					{"ts", relation.TTime},
					{"val", relation.TFloat},
				},
			},
		},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := turbineSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := turbineSchema()
	bad.Tables[0].PrimaryKey = "missing"
	if err := bad.Validate(); err == nil {
		t.Error("bad primary key accepted")
	}
	bad2 := turbineSchema()
	bad2.Tables = append(bad2.Tables, bad2.Tables[0])
	if err := bad2.Validate(); err == nil {
		t.Error("duplicate table accepted")
	}
	bad3 := turbineSchema()
	bad3.Tables[2].ForeignKeys[0].RefTable = "nope"
	if err := bad3.Validate(); err == nil {
		t.Error("dangling FK accepted")
	}
	bad4 := turbineSchema()
	bad4.BaseIRI = ""
	if err := bad4.Validate(); err == nil {
		t.Error("missing base IRI accepted")
	}
	bad5 := turbineSchema()
	bad5.Tables[3].TSCol = ""
	if err := bad5.Validate(); err == nil {
		t.Error("stream without ts accepted")
	}
}

func TestDirectBootstrap(t *testing.T) {
	res, err := Direct(turbineSchema())
	if err != nil {
		t.Fatal(err)
	}
	ns := "http://siemens.com/ontology#"
	classes, objProps, dataProps, nmaps := res.Stats()
	if classes != 3 {
		t.Errorf("classes = %d: %v", classes, res.TBox.Classes())
	}
	for _, c := range []string{"Turbine", "Assembly", "Sensor"} {
		if !res.TBox.IsClass(ns + c) {
			t.Errorf("missing class %s; have %v", c, res.TBox.Classes())
		}
	}
	// Explicit FK sensors.aid and implicit FK assemblies.tid become
	// object properties.
	if objProps != 2 {
		t.Errorf("object properties = %d: %v", objProps, res.TBox.ObjectProperties())
	}
	if !res.TBox.IsObjectProperty(ns + "hasA") { // aid -> "hasA"? see naming
		// Naming is hasA(id->a); accept either but require some property
		// ranging over Assembly.
		found := false
		for _, p := range res.TBox.ObjectProperties() {
			subs := res.TBox.DirectSubConceptsOf(ontology.Named(ns + "Assembly"))
			_ = subs
			found = found || strings.HasPrefix(p, ns+"has")
		}
		if !found {
			t.Errorf("no FK property found: %v", res.TBox.ObjectProperties())
		}
	}
	// Data properties: model, serial_no, name, kind, and the stream's val.
	if dataProps != 5 {
		t.Errorf("data properties = %d: %v", dataProps, res.TBox.DataProperties())
	}
	if !res.TBox.IsDataProperty(ns + "hasSerialNo") {
		t.Errorf("snake_case naming: %v", res.TBox.DataProperties())
	}
	if nmaps == 0 || nmaps != len(res.Report) {
		t.Errorf("mappings = %d, report = %d", nmaps, len(res.Report))
	}
	// Stream mapping: hasVal sourced from the stream with the sensor id
	// subject.
	streamMaps := res.Mappings.ForPred(ns + "hasVal")
	if len(streamMaps) != 1 || !streamMaps[0].Source.IsStream {
		t.Fatalf("stream mapping = %v", streamMaps)
	}
	if got := streamMaps[0].Subject.String(); !strings.Contains(got, "{sid}") {
		t.Errorf("stream subject template = %s", got)
	}
	// Domains recorded: hasModel's domain is Turbine.
	subs := res.TBox.DirectSubConceptsOf(ontology.Named(ns + "Turbine"))
	foundDomain := false
	for _, s := range subs {
		if s.Kind == ontology.ExistsConcept && s.Role.IRI == ns+"hasModel" {
			foundDomain = true
		}
	}
	if !foundDomain {
		t.Errorf("hasModel domain axiom missing: %v", subs)
	}
}

func TestNamingHelpers(t *testing.T) {
	cases := map[string]string{
		"gas_turbines": "GasTurbine",
		"assemblies":   "Assembly",
		"sensors":      "Sensor",
		"weather":      "Weather",
	}
	for in, want := range cases {
		if got := ClassName(in); got != want {
			t.Errorf("ClassName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := DataPropertyName("serial_no"); got != "hasSerialNo" {
		t.Errorf("DataPropertyName = %q", got)
	}
	if got := PropertyName("sensors", "aid"); got != "hasA" {
		t.Errorf("PropertyName = %q", got)
	}
	if got := PropertyName("sensors", "turbine_id"); got != "hasTurbine" {
		t.Errorf("PropertyName(turbine_id) = %q", got)
	}
}

func TestDirectBootstrapUnfoldable(t *testing.T) {
	// The bootstrapped assets must actually work end-to-end: a query for
	// Sensor must unfold over the generated mappings.
	res, err := Direct(turbineSchema())
	if err != nil {
		t.Fatal(err)
	}
	ns := "http://siemens.com/ontology#"
	ms := res.Mappings.ForPred(ns + "Sensor")
	if len(ms) != 1 {
		t.Fatalf("Sensor mappings = %v", ms)
	}
	if err := ms[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKeywordDiscovery(t *testing.T) {
	s := turbineSchema()
	cat := relation.NewCatalog()
	turbines, _ := cat.Create("turbines", relation.NewSchema(
		relation.Col("tid", relation.TInt),
		relation.Col("model", relation.TString),
		relation.Col("serial_no", relation.TString),
	))
	turbines.MustInsert(relation.Tuple{relation.Int(1), relation.String_("Albatros GT-2008"), relation.String_("SN-1")})
	turbines.MustInsert(relation.Tuple{relation.Int(2), relation.String_("Kondor ST"), relation.String_("SN-2")})
	assemblies, _ := cat.Create("assemblies", relation.NewSchema(
		relation.Col("aid", relation.TInt),
		relation.Col("tid", relation.TInt),
		relation.Col("name", relation.TString),
	))
	assemblies.MustInsert(relation.Tuple{relation.Int(10), relation.Int(1), relation.String_("gas burner")})

	cands, err := DiscoverClassMapping(s, cat, "Turbine",
		[]KeywordExample{{"albatros", "gas", "2008"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := cands[0]
	if best.Table != "turbines" {
		t.Fatalf("best candidate = %+v", best)
	}
	// "albatros" and "2008" hit turbines directly; "gas" arrives via the
	// FK join to assemblies.
	if len(best.Matched) < 2 {
		t.Errorf("matched = %v", best.Matched)
	}
	if len(best.JoinPath) == 0 {
		t.Errorf("join evidence missing: %+v", best)
	}
	if best.Mapping.Pred != s.BaseIRI+"Turbine" || !best.Mapping.IsClass {
		t.Errorf("mapping = %v", best.Mapping)
	}
	if _, err := DiscoverClassMapping(s, cat, "Turbine", []KeywordExample{{"zzznope"}}); err == nil {
		t.Error("unmatchable example accepted")
	}
	if _, err := DiscoverClassMapping(s, cat, "", nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAlignAcceptsLexicalMatch(t *testing.T) {
	a := ontology.New()
	a.DeclareClass("http://a#GasTurbine")
	a.DeclareClass("http://a#Sensor")
	b := ontology.New()
	b.DeclareClass("http://b#gas_turbine")
	b.DeclareClass("http://b#TemperatureSensor")

	cs := Align(a, b, 0.5)
	acc := Accepted(cs)
	if len(acc) != 1 {
		t.Fatalf("accepted = %v", cs)
	}
	if acc[0].Left != "http://a#GasTurbine" || acc[0].Right != "http://b#gas_turbine" {
		t.Errorf("correspondence = %+v", acc[0])
	}
	merged := Merge(a, b, acc)
	if !merged.IsSubClassOf("http://a#GasTurbine", "http://b#gas_turbine") {
		t.Error("merge did not add equivalence")
	}
}

func TestAlignConservativityRejects(t *testing.T) {
	// Left: Compressor and Turbine are unrelated siblings.
	a := ontology.New()
	a.AddConceptInclusion(ontology.Named("http://a#Turbine"), ontology.Named("http://a#Machine"))
	a.AddConceptInclusion(ontology.Named("http://a#Compressor"), ontology.Named("http://a#Machine"))
	// Right: one class lexically similar to BOTH left classes, and a
	// subclass axiom that would collapse them.
	b := ontology.New()
	b.AddConceptInclusion(ontology.Named("http://b#Turbine"), ontology.Named("http://b#Compressor"))

	cs := Align(a, b, 0.9)
	// Accepting both Turbine=Turbine and Compressor=Compressor would
	// entail a#Turbine ⊑ a#Compressor — a new subsumption in A, so the
	// second correspondence must be rejected.
	acc := Accepted(cs)
	if len(acc) >= 2 {
		t.Fatalf("conservativity violated: %+v", cs)
	}
	rejected := 0
	for _, c := range cs {
		if c.Rejected != "" {
			rejected++
			if !strings.Contains(c.Rejected, "⊑") {
				t.Errorf("rejection reason = %q", c.Rejected)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("nothing rejected")
	}
}

func TestAlignNoMatches(t *testing.T) {
	a := ontology.New()
	a.DeclareClass("http://a#Alpha")
	b := ontology.New()
	b.DeclareClass("http://b#Omega")
	if cs := Align(a, b, 0.5); len(cs) != 0 {
		t.Errorf("unexpected correspondences: %v", cs)
	}
}

package bootstrap

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obda/mapping"
	"repro/internal/relation"
)

// KeywordExample is one user-provided example for a class: a set of
// keywords that together identify an entity of the class, e.g.
// {"albatros", "gas", "2008"} for a turbine (paper §2).
type KeywordExample []string

// Candidate is one discovered mapping proposal with its score and the
// evidence that produced it.
type Candidate struct {
	Mapping  mapping.Mapping
	Score    float64
	Table    string
	Matched  []string // keywords found in the table
	JoinPath []string // FK path when evidence spans tables
}

// DiscoverClassMapping implements BootOX's keyword-based discovery: it
// scans the data for tables whose rows contain the example keywords
// (graph-based keyword search in the style of DISCOVER [8], restricted
// to FK-adjacent tables) and proposes class mappings over the
// best-scoring tables, projected on their primary keys.
func DiscoverClassMapping(s Schema, cat *relation.Catalog, className string, examples []KeywordExample) ([]Candidate, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if className == "" || len(examples) == 0 {
		return nil, fmt.Errorf("bootstrap: class name and at least one example required")
	}
	adjacency := fkAdjacency(s)

	type tableScore struct {
		matched map[string]bool
		rows    int
	}
	scores := map[string]*tableScore{}

	for _, t := range s.Tables {
		if t.IsStream || t.PrimaryKey == "" {
			continue
		}
		tb, err := cat.Get(t.Name)
		if err != nil {
			continue // schema table without loaded data
		}
		ts := &tableScore{matched: map[string]bool{}}
		for _, row := range tb.Rows() {
			ts.rows++
			for _, ex := range examples {
				for _, kw := range ex {
					if rowContains(row, kw) {
						ts.matched[strings.ToLower(kw)] = true
					}
				}
			}
		}
		scores[strings.ToLower(t.Name)] = ts
	}

	total := 0
	for _, ex := range examples {
		total += len(ex)
	}

	var out []Candidate
	for _, t := range s.Tables {
		if t.IsStream || t.PrimaryKey == "" {
			continue
		}
		ts := scores[strings.ToLower(t.Name)]
		if ts == nil || len(ts.matched) == 0 {
			continue
		}
		matched := keys(ts.matched)
		// Neighbours reachable over one FK edge contribute their matches
		// (join evidence), at half weight.
		joinBonus := 0.0
		var path []string
		for _, nb := range adjacency[strings.ToLower(t.Name)] {
			if nts := scores[nb]; nts != nil && len(nts.matched) > 0 {
				extra := 0
				for kw := range nts.matched {
					if !ts.matched[kw] {
						extra++
					}
				}
				if extra > 0 {
					joinBonus += 0.5 * float64(extra)
					path = append(path, nb)
				}
			}
		}
		score := (float64(len(matched)) + joinBonus) / float64(total)
		cand := Candidate{
			Table:    t.Name,
			Matched:  matched,
			Score:    score,
			JoinPath: path,
			Mapping: mapping.Mapping{
				ID:         "discovered:" + className + ":" + t.Name,
				Pred:       s.BaseIRI + className,
				IsClass:    true,
				Subject:    subjectTemplate(s, t),
				Source:     mapping.SourceRef{Table: t.Name},
				KeyColumns: []string{t.PrimaryKey},
			},
		}
		out = append(out, cand)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bootstrap: no table matches the examples for %s", className)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	return out, nil
}

// fkAdjacency builds the undirected FK graph over table names
// (lower-cased), including implicit FKs.
func fkAdjacency(s Schema) map[string][]string {
	adj := map[string][]string{}
	add := func(a, b string) {
		a, b = strings.ToLower(a), strings.ToLower(b)
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, t := range s.Tables {
		for _, fk := range t.ForeignKeys {
			add(t.Name, fk.RefTable)
		}
		for _, fk := range implicitFKs(t, s.Tables) {
			add(t.Name, fk.RefTable)
		}
	}
	return adj
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rowContains reports whether any cell of the row matches the keyword:
// substring match on strings (case-insensitive), exact match on numbers.
func rowContains(row relation.Tuple, kw string) bool {
	lkw := strings.ToLower(kw)
	for _, v := range row {
		switch v.Type {
		case relation.TString:
			if strings.Contains(strings.ToLower(v.Str), lkw) {
				return true
			}
		case relation.TInt, relation.TTime:
			if n, err := strconv.ParseInt(kw, 10, 64); err == nil && n == v.Int {
				return true
			}
		case relation.TFloat:
			if f, err := strconv.ParseFloat(kw, 64); err == nil && f == v.Float {
				return true
			}
		}
	}
	return false
}

// Package bootstrap implements BootOX [9], OPTIQUE's deployment-support
// component (challenge C1): it extracts an OWL 2 QL ontology and GAV
// mappings from relational and streaming schemas.
//
// Three bootstrappers are provided, mirroring the paper:
//   - the logical (direct) bootstrapper: tables become classes projected
//     on their primary keys, foreign keys (explicit or implicitly
//     discovered) become object properties, scalar columns become data
//     properties;
//   - the keyword-driven discovery of complex mappings (DISCOVER-style
//     [8]): users give example keyword sets for a class and the system
//     finds the queries that retrieve them;
//   - ontology alignment with a conservativity check that rejects
//     correspondences producing undesired logical consequences.
package bootstrap

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obda/mapping"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// Column describes one column of a source table or stream.
type Column struct {
	Name string
	Type relation.Type
}

// FK is a foreign-key constraint.
type FK struct {
	Column    string // local column
	RefTable  string
	RefColumn string
}

// Table describes a relational table or stream to bootstrap from.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  string // single-column keys cover the Siemens schemas
	ForeignKeys []FK
	IsStream    bool
	TSCol       string // timestamp column of a stream (skipped as data property)
}

// Schema is a collection of tables under a namespace.
type Schema struct {
	BaseIRI string // e.g. "http://siemens.com/ontology#"
	DataIRI string // base for instance IRIs, e.g. "http://siemens.com/data/"
	Tables  []Table
}

// Validate checks structural requirements.
func (s Schema) Validate() error {
	if s.BaseIRI == "" || s.DataIRI == "" {
		return fmt.Errorf("bootstrap: BaseIRI and DataIRI are required")
	}
	seen := map[string]bool{}
	byName := map[string]*Table{}
	for i := range s.Tables {
		t := &s.Tables[i]
		if t.Name == "" {
			return fmt.Errorf("bootstrap: table without name")
		}
		key := strings.ToLower(t.Name)
		if seen[key] {
			return fmt.Errorf("bootstrap: duplicate table %q", t.Name)
		}
		seen[key] = true
		byName[key] = t
		if t.PrimaryKey == "" && !t.IsStream {
			return fmt.Errorf("bootstrap: table %q has no primary key", t.Name)
		}
		cols := map[string]bool{}
		for _, c := range t.Columns {
			cols[strings.ToLower(c.Name)] = true
		}
		if t.PrimaryKey != "" && !cols[strings.ToLower(t.PrimaryKey)] {
			return fmt.Errorf("bootstrap: table %q: primary key %q not a column", t.Name, t.PrimaryKey)
		}
		if t.IsStream && (t.TSCol == "" || !cols[strings.ToLower(t.TSCol)]) {
			return fmt.Errorf("bootstrap: stream %q needs a timestamp column", t.Name)
		}
	}
	for _, t := range s.Tables {
		for _, fk := range t.ForeignKeys {
			if byName[strings.ToLower(fk.RefTable)] == nil {
				return fmt.Errorf("bootstrap: table %q: FK references unknown table %q", t.Name, fk.RefTable)
			}
		}
	}
	return nil
}

// Result is the bootstrapped deployment assets.
type Result struct {
	TBox     *ontology.TBox
	Mappings *mapping.Set
	// Report lists human-readable decisions (one per asset), in order.
	Report []string
}

// Stats summarises a bootstrap run.
func (r *Result) Stats() (classes, objProps, dataProps, mappings int) {
	return len(r.TBox.Classes()), len(r.TBox.ObjectProperties()),
		len(r.TBox.DataProperties()), r.Mappings.Len()
}

// Direct runs the logical bootstrapper over the schema.
func Direct(s Schema) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tbox := ontology.New()
	set, _ := mapping.NewSet()
	res := &Result{TBox: tbox, Mappings: set}

	byName := map[string]*Table{}
	for i := range s.Tables {
		byName[strings.ToLower(s.Tables[i].Name)] = &s.Tables[i]
	}

	// Pass 1: classes for every keyed table.
	classIRI := map[string]string{} // table -> class IRI
	for _, t := range s.Tables {
		if t.PrimaryKey == "" {
			continue
		}
		cls := s.BaseIRI + ClassName(t.Name)
		classIRI[strings.ToLower(t.Name)] = cls
		tbox.DeclareClass(cls)
		tbox.SetLabel(cls, humanLabel(t.Name))
		m := mapping.Mapping{
			ID:         "class:" + t.Name,
			Pred:       cls,
			IsClass:    true,
			Subject:    subjectTemplate(s, t),
			Source:     mapping.SourceRef{Table: t.Name, IsStream: t.IsStream},
			KeyColumns: []string{t.PrimaryKey},
		}
		if err := set.Add(m); err != nil {
			return nil, err
		}
		res.Report = append(res.Report, fmt.Sprintf("class %s <- table %s (pk %s)", ClassName(t.Name), t.Name, t.PrimaryKey))
	}

	// Pass 2: properties.
	for _, t := range s.Tables {
		fks := append([]FK{}, t.ForeignKeys...)
		fks = append(fks, implicitFKs(t, s.Tables)...)
		fkCols := map[string]FK{}
		for _, fk := range fks {
			fkCols[strings.ToLower(fk.Column)] = fk
		}
		subject := subjectTemplate(s, t)
		subjectKnown := t.PrimaryKey != "" || t.IsStream
		// A stream's subject key column (e.g. the sensor id on a
		// measurement stream) identifies the subject itself; it must not
		// also become a self-referencing object property.
		subjectKey := t.PrimaryKey
		if t.IsStream && len(subject.Columns) == 1 {
			subjectKey = subject.Columns[0]
		}

		for _, c := range t.Columns {
			lc := strings.ToLower(c.Name)
			if strings.EqualFold(c.Name, subjectKey) || strings.EqualFold(c.Name, t.TSCol) {
				continue
			}
			if fk, ok := fkCols[lc]; ok {
				// Object property to the referenced class.
				ref := byName[strings.ToLower(fk.RefTable)]
				refCls, hasRef := classIRI[strings.ToLower(fk.RefTable)]
				if !hasRef || !subjectKnown {
					continue
				}
				prop := s.BaseIRI + PropertyName(t.Name, c.Name)
				tbox.DeclareObjectProperty(prop)
				if cls, ok := classIRI[strings.ToLower(t.Name)]; ok {
					tbox.AddDomain(prop, ontology.Named(cls))
				}
				tbox.AddRange(prop, ontology.Named(refCls))
				m := mapping.Mapping{
					ID:         "objprop:" + t.Name + "." + c.Name,
					Pred:       prop,
					Subject:    subject,
					Object:     subjectTemplate(s, *ref),
					Source:     mapping.SourceRef{Table: t.Name, IsStream: t.IsStream},
					KeyColumns: keyCols(t),
				}
				// The object template must read the FK column of this table.
				m.Object = retarget(m.Object, ref.PrimaryKey, c.Name)
				if err := set.Add(m); err != nil {
					return nil, err
				}
				res.Report = append(res.Report, fmt.Sprintf("object property %s <- FK %s.%s -> %s.%s",
					PropertyName(t.Name, c.Name), t.Name, c.Name, fk.RefTable, fk.RefColumn))
				continue
			}
			if !subjectKnown {
				continue
			}
			// Data property.
			prop := s.BaseIRI + DataPropertyName(c.Name)
			tbox.DeclareDataProperty(prop)
			tbox.SetLabel(prop, humanLabel(c.Name))
			if cls, ok := classIRI[strings.ToLower(t.Name)]; ok {
				tbox.AddDomain(prop, ontology.Named(cls))
			}
			m := mapping.Mapping{
				ID:           "dataprop:" + t.Name + "." + c.Name,
				Pred:         prop,
				Subject:      subject,
				Object:       mapping.MustParseTemplate("{" + c.Name + "}"),
				ObjectIsData: true,
				Source:       mapping.SourceRef{Table: t.Name, IsStream: t.IsStream},
				KeyColumns:   keyCols(t),
			}
			if err := set.Add(m); err != nil {
				return nil, err
			}
			res.Report = append(res.Report, fmt.Sprintf("data property %s <- column %s.%s",
				DataPropertyName(c.Name), t.Name, c.Name))
		}
	}
	if err := tbox.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

func keyCols(t Table) []string {
	if t.PrimaryKey == "" {
		return nil
	}
	return []string{t.PrimaryKey}
}

// subjectTemplate builds the instance IRI template of a table: streams
// without a primary key use their first FK-ish id column.
func subjectTemplate(s Schema, t Table) mapping.Template {
	key := t.PrimaryKey
	if key == "" {
		// Streams: use the first non-timestamp integer column as the
		// entity identifier (measurements identify their sensor).
		for _, c := range t.Columns {
			if !strings.EqualFold(c.Name, t.TSCol) && c.Type == relation.TInt {
				key = c.Name
				break
			}
		}
	}
	entity := singular(strings.ToLower(t.Name))
	if t.IsStream && key != "" {
		// Stream rows denote the entity their id column references: find
		// the table whose primary key the column names (implicit FK) so
		// stream subjects share the IRI scheme of that table's instances.
		entity = ""
		for _, other := range s.Tables {
			if other.IsStream || other.PrimaryKey == "" || strings.EqualFold(other.Name, t.Name) {
				continue
			}
			pk := strings.ToLower(other.PrimaryKey)
			lk := strings.ToLower(key)
			if lk == pk || lk == strings.ToLower(other.Name)+"_"+pk || lk == strings.ToLower(singular(other.Name))+"_"+pk {
				entity = singular(strings.ToLower(other.Name))
				break
			}
		}
		if entity == "" {
			entity = singular(strings.ToLower(t.Name))
		}
	}
	return mapping.MustParseTemplate(s.DataIRI + entity + "/{" + key + "}")
}

// retarget rewrites the single column of an object template.
func retarget(t mapping.Template, oldCol, newCol string) mapping.Template {
	out := t
	out.Columns = append([]string{}, t.Columns...)
	for i, c := range out.Columns {
		if strings.EqualFold(c, oldCol) {
			out.Columns[i] = newCol
		}
	}
	return out
}

// implicitFKs discovers unlisted foreign keys by the naming conventions
// the paper alludes to ("explicit or implicit foreign key"): a column
// whose name equals another table's primary key, or "<table>_<pk>".
func implicitFKs(t Table, all []Table) []FK {
	explicit := map[string]bool{}
	for _, fk := range t.ForeignKeys {
		explicit[strings.ToLower(fk.Column)] = true
	}
	var out []FK
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if explicit[lc] || strings.EqualFold(c.Name, t.PrimaryKey) {
			continue
		}
		for _, other := range all {
			if strings.EqualFold(other.Name, t.Name) || other.PrimaryKey == "" {
				continue
			}
			pk := strings.ToLower(other.PrimaryKey)
			if lc == pk || lc == strings.ToLower(other.Name)+"_"+pk || lc == strings.ToLower(singular(other.Name))+"_"+pk {
				out = append(out, FK{Column: c.Name, RefTable: other.Name, RefColumn: other.PrimaryKey})
				break
			}
		}
	}
	return out
}

// ---- naming helpers ----

// ClassName converts a table name to a class name: snake_case plural to
// CamelCase singular ("gas_turbines" -> "GasTurbine").
func ClassName(table string) string {
	parts := strings.Split(strings.ToLower(table), "_")
	for i, p := range parts {
		if i == len(parts)-1 {
			p = singular(p)
		}
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "")
}

// PropertyName names an FK-derived object property ("sensors.aid" ->
// "sensorsAid" is ugly; use "has"+RefClass-ish based on column).
func PropertyName(table, column string) string {
	base := strings.ToLower(column)
	base = strings.TrimSuffix(base, "_id")
	base = strings.TrimSuffix(base, "id")
	if base == "" || base == "_" {
		base = strings.ToLower(singular(table)) + "Ref"
	}
	base = strings.Trim(base, "_")
	return "has" + strings.ToUpper(base[:1]) + base[1:]
}

// DataPropertyName names a column-derived data property
// ("serial_no" -> "hasSerialNo").
func DataPropertyName(column string) string {
	parts := strings.Split(strings.ToLower(column), "_")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return "has" + strings.Join(parts, "")
}

func singular(s string) string {
	switch {
	case strings.HasSuffix(s, "ies"):
		return s[:len(s)-3] + "y"
	case strings.HasSuffix(s, "ses"):
		return s[:len(s)-2]
	case strings.HasSuffix(s, "s") && !strings.HasSuffix(s, "ss"):
		return s[:len(s)-1]
	default:
		return s
	}
}

func humanLabel(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "_", " ")
}

// SortedReport returns the report lines sorted (for stable test output).
func (r *Result) SortedReport() []string {
	out := append([]string{}, r.Report...)
	sort.Strings(out)
	return out
}

package bootstrap

import (
	"sort"
	"strings"

	"repro/internal/ontology"
)

// Correspondence is one proposed alignment between terms of two
// ontologies, with a lexical confidence in (0, 1].
type Correspondence struct {
	Left, Right string // IRIs
	Confidence  float64
	// Rejected is set by the conservativity check with the reason.
	Rejected string
}

// Align proposes class correspondences between two TBoxes by lexical
// matching of local names and labels, then applies the conservativity
// check the paper describes ("Alignment: checks for undesired logical
// consequences"): a correspondence is rejected when merging it would
// create a subsumption between two classes of the same input ontology
// that neither ontology entailed on its own.
func Align(left, right *ontology.TBox, minConfidence float64) []Correspondence {
	var props []Correspondence
	for _, lc := range left.Classes() {
		for _, rc := range right.Classes() {
			conf := lexicalSimilarity(nameTokens(lc, left), nameTokens(rc, right))
			if conf >= minConfidence {
				props = append(props, Correspondence{Left: lc, Right: rc, Confidence: conf})
			}
		}
	}
	sort.Slice(props, func(i, j int) bool {
		if props[i].Confidence != props[j].Confidence {
			return props[i].Confidence > props[j].Confidence
		}
		if props[i].Left != props[j].Left {
			return props[i].Left < props[j].Left
		}
		return props[i].Right < props[j].Right
	})

	// Baseline subsumptions of each input.
	baseLeft := left.SubClassClosure()
	baseRight := right.SubClassClosure()
	leftClasses := map[string]bool{}
	for _, c := range left.Classes() {
		leftClasses[c] = true
	}
	rightClasses := map[string]bool{}
	for _, c := range right.Classes() {
		rightClasses[c] = true
	}

	// Accept greedily, re-running the conservativity check after each
	// tentative acceptance.
	merged := mergeTBoxes(left, right)
	var accepted []Correspondence
	for i := range props {
		c := &props[i]
		trial := cloneAxioms(merged)
		for _, a := range accepted {
			trial.AddConceptInclusion(ontology.Named(a.Left), ontology.Named(a.Right))
			trial.AddConceptInclusion(ontology.Named(a.Right), ontology.Named(a.Left))
		}
		trial.AddConceptInclusion(ontology.Named(c.Left), ontology.Named(c.Right))
		trial.AddConceptInclusion(ontology.Named(c.Right), ontology.Named(c.Left))
		if reason := violates(trial, baseLeft, leftClasses); reason != "" {
			c.Rejected = reason
			continue
		}
		if reason := violates(trial, baseRight, rightClasses); reason != "" {
			c.Rejected = reason
			continue
		}
		accepted = append(accepted, *c)
	}
	return props
}

// Accepted filters to the surviving correspondences.
func Accepted(cs []Correspondence) []Correspondence {
	var out []Correspondence
	for _, c := range cs {
		if c.Rejected == "" {
			out = append(out, c)
		}
	}
	return out
}

// Merge adds the accepted correspondences to a combined TBox (mutual
// inclusions encode equivalence in OWL 2 QL).
func Merge(left, right *ontology.TBox, accepted []Correspondence) *ontology.TBox {
	out := mergeTBoxes(left, right)
	for _, c := range accepted {
		if c.Rejected != "" {
			continue
		}
		out.AddConceptInclusion(ontology.Named(c.Left), ontology.Named(c.Right))
		out.AddConceptInclusion(ontology.Named(c.Right), ontology.Named(c.Left))
	}
	return out
}

func mergeTBoxes(a, b *ontology.TBox) *ontology.TBox {
	out := ontology.New()
	for _, t := range []*ontology.TBox{a, b} {
		for _, c := range t.Classes() {
			out.DeclareClass(c)
		}
		for _, p := range t.ObjectProperties() {
			out.DeclareObjectProperty(p)
		}
		for _, p := range t.DataProperties() {
			out.DeclareDataProperty(p)
		}
		for _, ci := range t.ConceptInclusions() {
			out.AddConceptInclusion(ci.Sub, ci.Sup)
		}
		for _, ri := range t.RoleInclusions() {
			out.AddRoleInclusion(ri.Sub, ri.Sup)
		}
		for _, d := range t.Disjointnesses() {
			out.AddDisjoint(d.A, d.B)
		}
	}
	return out
}

func cloneAxioms(t *ontology.TBox) *ontology.TBox {
	return mergeTBoxes(t, ontology.New())
}

// violates reports a new subsumption among classes of one source
// ontology that the source did not entail, or "".
func violates(merged *ontology.TBox, base map[string]map[string]bool, classes map[string]bool) string {
	closure := merged.SubClassClosure()
	for sup, subs := range closure {
		if !classes[sup] {
			continue
		}
		for sub := range subs {
			if sub == sup || !classes[sub] {
				continue
			}
			if !base[sup][sub] {
				return "introduces " + sub + " ⊑ " + sup
			}
		}
	}
	return ""
}

// nameTokens extracts comparison tokens from a term's local name and
// label: lower-cased camel-case/underscore segments.
func nameTokens(iri string, t *ontology.TBox) map[string]bool {
	out := map[string]bool{}
	local := iri
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 && i+1 < len(iri) {
		local = iri[i+1:]
	}
	for _, tok := range splitIdent(local) {
		out[tok] = true
	}
	for _, tok := range strings.Fields(strings.ToLower(t.Label(iri))) {
		out[tok] = true
	}
	return out
}

// splitIdent splits CamelCase and snake_case identifiers into lower-case
// tokens.
func splitIdent(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '_' || r == '-' || r == ' ':
			flush()
		case r >= 'A' && r <= 'Z':
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// lexicalSimilarity is the Jaccard overlap of the token sets.
func lexicalSimilarity(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

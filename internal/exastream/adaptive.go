package exastream

import (
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/sql"
)

// probe identifies a (table, columns) lookup pattern observed during
// window execution; the adaptive indexer counts these and builds a hash
// index once a pattern is hot.
type probe struct {
	table string
	cols  []string
}

func (p probe) key() string {
	return strings.ToLower(p.table) + "|" + strings.ToLower(strings.Join(p.cols, ","))
}

// adaptPlan rewrites hash joins whose build side is a full scan of a
// static base table into lookup joins against that table, so repeated
// window executions can benefit from an adaptive index. It returns the
// rewritten plan and the lookup patterns it introduced.
func (e *Engine) adaptPlan(p engine.Plan) (engine.Plan, []probe) {
	var probes []probe
	var rec func(p engine.Plan) engine.Plan
	rec = func(p engine.Plan) engine.Plan {
		switch n := p.(type) {
		case *engine.HashJoinPlan:
			left := rec(n.Left)
			right := rec(n.Right)
			if !n.LeftOuter {
				if lj, pr, ok := e.toLookupJoin(left, right, n.LeftKeys, n.RightKeys, n.Residual); ok {
					probes = append(probes, pr)
					return lj
				}
				if lj, pr, ok := e.toLookupJoin(right, left, n.RightKeys, n.LeftKeys, n.Residual); ok {
					// Column order flips; the schema does too, which is fine
					// because residual and projection reference columns by
					// name. Only safe when the residual still resolves;
					// checked inside toLookupJoin.
					probes = append(probes, pr)
					return lj
				}
			}
			return engine.NewHashJoinPlan(left, right, n.LeftKeys, n.RightKeys, n.Residual, n.LeftOuter)
		case *engine.NestedLoopJoinPlan:
			left := rec(n.Left)
			right := rec(n.Right)
			return engine.NewNestedLoopJoinPlan(left, right, n.On, n.LeftOuter)
		case *engine.FilterPlan:
			return &engine.FilterPlan{Input: rec(n.Input), Pred: n.Pred}
		case *engine.ProjectPlan:
			return engine.NewProjectPlan(rec(n.Input), n.Exprs, n.Names)
		case *engine.SortPlan:
			return &engine.SortPlan{Input: rec(n.Input), Items: n.Items}
		case *engine.DistinctPlan:
			return &engine.DistinctPlan{Input: rec(n.Input)}
		case *engine.LimitPlan:
			return &engine.LimitPlan{Input: rec(n.Input), N: n.N}
		case *engine.AggregatePlan:
			return engine.NewAggregatePlan(rec(n.Input), n.GroupExprs, n.Aggs)
		case *engine.UnionPlan:
			inputs := make([]engine.Plan, len(n.Inputs))
			for i, in := range n.Inputs {
				inputs[i] = rec(in)
			}
			return &engine.UnionPlan{Inputs: inputs, Distinct: n.Distinct}
		default:
			return p
		}
	}
	out := rec(p)
	return out, probes
}

// toLookupJoin converts (probeSide, buildSide) into a lookup join when
// the build side is a plain scan of a catalog table and the build keys
// are bare columns of it.
func (e *Engine) toLookupJoin(probeSide, buildSide engine.Plan, probeKeys, buildKeys []sql.Expr, residual sql.Expr) (engine.Plan, probe, bool) {
	scan, ok := buildSide.(*engine.ScanPlan)
	if !ok || len(buildKeys) == 0 {
		return nil, probe{}, false
	}
	table, err := e.catalog.Get(scan.Table)
	if err != nil {
		return nil, probe{}, false
	}
	cols := make([]string, len(buildKeys))
	for i, k := range buildKeys {
		cr, ok := k.(*sql.ColumnRef)
		if !ok {
			return nil, probe{}, false
		}
		// The scan qualifies columns by its alias; strip it.
		if cr.Table != "" && !strings.EqualFold(cr.Table, scan.Alias) {
			return nil, probe{}, false
		}
		cols[i] = cr.Name
	}
	lj := engine.NewLookupJoinPlan(probeSide, scan.Table, scan.Alias, table.Schema(), probeKeys, cols, residual)
	// The lookup join's output schema must contain everything the
	// residual references.
	if residual != nil && !engine.ResolvesAgainst(residual, lj.Schema()) {
		return nil, probe{}, false
	}
	return lj, probe{table: scan.Table, cols: cols}, true
}

// noteProbes counts lookup patterns and builds indexes for hot ones.
func (e *Engine) noteProbes(ps []probe) {
	if !e.opts.AdaptiveIndexing {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range ps {
		table, err := e.catalog.Get(p.table)
		if err != nil {
			continue
		}
		if table.HasIndex(p.cols...) {
			continue
		}
		k := p.key()
		e.probes[k]++
		if e.probes[k] >= e.opts.AdaptiveThreshold {
			if err := table.CreateIndex(p.cols...); err == nil {
				e.met.adaptiveIndexes.Inc()
				// Invalidate adapted plans: cached queries compare their
				// epoch and re-run adaptation to pick up the new index.
				atomic.AddInt64(&e.indexEpoch, 1)
			}
		}
	}
}

package exastream

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// feedRange ingests n tuples starting at tuple index start (timestamps
// keep advancing across calls, unlike feed), without flushing.
func feedRange(t *testing.T, e *Engine, start, n int, stepMS int64) {
	t.Helper()
	for i := start; i < start+n; i++ {
		ts := int64(i) * stepMS
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(int64(i%10 + 1)), relation.Time(ts), relation.Float(float64(50 + i%30)),
		}}
		if err := e.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanCacheHitSteadyState(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, s.tid, m.val
		FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m, sensors AS s
		WHERE m.sid = s.sid`)
	if err := e.Register("q", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 100, 100)
	st := e.Stats()
	if st.WindowsExecuted == 0 {
		t.Fatal("no windows executed")
	}
	// One eager build at Register; every window after that is a cache hit.
	if st.PlanBuilds != 1 {
		t.Errorf("PlanBuilds = %d, want 1 (eager build only)", st.PlanBuilds)
	}
	if st.PlanCacheHits != st.WindowsExecuted {
		t.Errorf("PlanCacheHits = %d, want %d (one per window)", st.PlanCacheHits, st.WindowsExecuted)
	}
}

func TestPlanCacheDisabledMatchesCached(t *testing.T) {
	run := func(opts Options) ([]collected, Stats) {
		e := testRig(t, opts)
		c := &collector{}
		q := sql.MustParse(`SELECT m.sid, avg(m.val) AS a
			FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m, sensors AS s
			WHERE m.sid = s.sid GROUP BY m.sid`)
		if err := e.Register("q", q, nil, c.sink); err != nil {
			t.Fatal(err)
		}
		feed(t, e, 100, 100)
		c.mu.Lock()
		defer c.mu.Unlock()
		return append([]collected(nil), c.results...), e.Stats()
	}
	cached, cst := run(Options{})
	rebuilt, rst := run(Options{DisablePlanCache: true})
	if !reflect.DeepEqual(cached, rebuilt) {
		t.Fatalf("cached and rebuilt runs disagree:\n%v\n%v", cached, rebuilt)
	}
	if rst.PlanCacheHits != 0 {
		t.Errorf("DisablePlanCache hit the cache %d times", rst.PlanCacheHits)
	}
	if rst.PlanBuilds != rst.WindowsExecuted {
		t.Errorf("DisablePlanCache: PlanBuilds = %d, want %d", rst.PlanBuilds, rst.WindowsExecuted)
	}
	if cst.PlanBuilds >= rst.PlanBuilds {
		t.Errorf("cache did not amortize builds: %d vs %d", cst.PlanBuilds, rst.PlanBuilds)
	}
}

// TestAdaptiveIndexInvalidatesCachedPlan is the acceptance test for
// epoch invalidation: a plan cached before the adaptive index exists
// must be re-adapted once the index is built, and its subsequent
// windows must do index lookups instead of scans.
func TestAdaptiveIndexInvalidatesCachedPlan(t *testing.T) {
	e := testRig(t, Options{AdaptiveIndexing: true, AdaptiveThreshold: 3})
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, s.kind FROM STREAM msmt [RANGE 500 SLIDE 500] AS m, sensors AS s
		WHERE m.sid = s.sid`)
	if err := e.Register("adaptive", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feedRange(t, e, 0, 30, 100) // enough windows to cross the threshold
	mid := e.Stats()
	if mid.AdaptiveIndexes == 0 {
		t.Fatal("no adaptive index built")
	}
	if mid.PlanReadapts == 0 {
		t.Fatal("cached plan was not re-adapted after the index appeared")
	}
	feedRange(t, e, 30, 30, 100)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	end := e.Stats()
	if end.IndexLookups <= mid.IndexLookups {
		t.Fatalf("IndexLookups did not increase after re-adaptation: %d -> %d",
			mid.IndexLookups, end.IndexLookups)
	}
	// Steady state after re-adaptation is cache hits again.
	if end.PlanReadapts != mid.PlanReadapts {
		t.Errorf("plan kept re-adapting: %d -> %d", mid.PlanReadapts, end.PlanReadapts)
	}
}

func TestCatalogGenerationInvalidatesCachedPlan(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if err := e.Register("q", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feedRange(t, e, 0, 20, 100)
	before := e.Stats()
	if before.WindowsExecuted == 0 {
		t.Fatal("no windows executed before the catalog change")
	}
	if _, err := e.Catalog().Create("newtable", relation.NewSchema(relation.Col("x", relation.TInt))); err != nil {
		t.Fatal(err)
	}
	feedRange(t, e, 20, 20, 100)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.PlanBuilds != before.PlanBuilds+1 {
		t.Errorf("PlanBuilds %d -> %d, want one rebuild after catalog change",
			before.PlanBuilds, after.PlanBuilds)
	}
}

func TestResumeDropsCachedPlan(t *testing.T) {
	e := testRig(t, Options{QuarantineAfter: 1})
	c := &collector{}
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if err := e.Register("q", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feedRange(t, e, 0, 20, 100)
	e.mu.Lock()
	cq := e.queries["q"]
	e.mu.Unlock()
	cq.execMu.Lock()
	hadPlan := cq.plan != nil
	cq.execMu.Unlock()
	if !hadPlan {
		t.Fatal("no cached plan after execution")
	}
	if err := e.Resume("q"); err != nil {
		t.Fatal(err)
	}
	cq.execMu.Lock()
	stillCached := cq.plan != nil
	cq.execMu.Unlock()
	if stillCached {
		t.Fatal("Resume did not drop the cached plan")
	}
	before := e.Stats().PlanBuilds
	feedRange(t, e, 20, 20, 100)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().PlanBuilds; got != before+1 {
		t.Errorf("PlanBuilds after Resume = %d, want %d", got, before+1)
	}
}

// TestPulsePendingLeakRegression covers the offer-ordering fix: with a
// pulse whose frequency is a multiple of the window slide, batches for
// non-pulse ticks must never enter the pending map. The query joins two
// windows of different ranges, so the shorter window emits ends the
// longer one never will — under the old ordering those accumulated as
// partial pending entries forever.
func TestPulsePendingLeakRegression(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse(`SELECT a.sid, b.sid FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS a,
		msmt [RANGE 2000 SLIDE 1000] AS b
		WHERE a.sid = b.sid`)
	pulse := &stream.Pulse{StartMS: 0, FrequencyMS: 2000} // 2x the slide
	if err := e.Register("paced", q, pulse, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 100, 100)
	e.mu.Lock()
	cq := e.queries["paced"]
	e.mu.Unlock()
	cq.mu.Lock()
	leaked := len(cq.pending)
	cq.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d partial pending entries leaked across ticks", leaked)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.results) == 0 {
		t.Fatal("no results on pulse ticks")
	}
	for _, r := range c.results {
		if r.end%2000 != 0 {
			t.Fatalf("result at non-pulse time %d", r.end)
		}
	}
}

// TestParallelFleetMatchesSequential executes the same multi-query
// fleet with a parallel pool and sequentially, and requires identical
// per-query, per-window results.
func TestParallelFleetMatchesSequential(t *testing.T) {
	run := func(parallelism int) map[string][]collected {
		e := testRig(t, Options{Parallelism: parallelism, AdaptiveIndexing: true, ShareWindows: true})
		c := &collector{}
		for i := 0; i < 8; i++ {
			q := sql.MustParse(fmt.Sprintf(`SELECT m.sid, s.tid, avg(m.val) AS a
				FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m, sensors AS s
				WHERE m.sid = s.sid AND m.val > %d GROUP BY m.sid, s.tid`, 40+i))
			if err := e.Register(fmt.Sprintf("q%d", i), q, nil, c.sink); err != nil {
				t.Fatal(err)
			}
		}
		feed(t, e, 200, 50)
		c.mu.Lock()
		defer c.mu.Unlock()
		byQuery := make(map[string][]collected)
		for _, r := range c.results {
			byQuery[r.qid] = append(byQuery[r.qid], r)
		}
		return byQuery
	}
	seq := run(1)
	par := run(8)
	if len(seq) != len(par) {
		t.Fatalf("query sets differ: %d vs %d", len(seq), len(par))
	}
	for qid, sres := range seq {
		pres := par[qid]
		if !reflect.DeepEqual(sres, pres) {
			t.Fatalf("query %s: parallel results differ from sequential\nseq: %v\npar: %v", qid, sres, pres)
		}
		// Sink ordering per query must be monotone in window end.
		if !sort.SliceIsSorted(pres, func(i, j int) bool { return pres[i].end < pres[j].end }) {
			t.Fatalf("query %s: sink calls out of window order", qid)
		}
	}
}

package exastream

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/obda/mapping"
	"repro/internal/relation"
	"repro/internal/siemens"
	"repro/internal/starql"
	"repro/internal/stream"
)

// diffAssets bundles one deployment's translation inputs.
type diffAssets struct {
	gen    *siemens.Generator
	cat    *relation.Catalog
	tr     *starql.Translator
	tuples []stream.Timestamped
	routes []bool
}

func diffSetup(t *testing.T) *diffAssets {
	t.Helper()
	gen, err := siemens.New(siemens.Config{
		Turbines: 3, SensorsPerTurbine: 4, AssembliesPerTurbine: 2,
		SourceASplit: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 30_000, StepMS: 1_000, Seed: 9,
		Events: gen.PlantDefaultEvents(0, 30_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &diffAssets{
		gen: gen, cat: cat,
		tr:     starql.NewTranslator(siemens.TBox(), siemens.Mappings(), cat),
		tuples: tuples, routes: routes,
	}
}

func (a *diffAssets) translate(t *testing.T, prune bool) *starql.Translation {
	t.Helper()
	spec, ok := siemens.TaskByID("T01_mon_temperature")
	if !ok {
		t.Fatal("task T01 missing")
	}
	q, err := starql.Parse(spec.Query)
	if err != nil {
		t.Fatal(err)
	}
	opts := starql.Options{}
	if prune {
		opts.Unfold = mapping.UnfoldOptions{Prune: true, Catalog: a.cat}
	}
	tl, err := a.tr.Translate(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// runFleet registers every stream-fleet member on a fresh engine,
// replays the seeded tuple log, and returns the distinct rows the fleet
// produced per window end (set semantics: the fleet's answer is the
// union of its members).
func runFleet(t *testing.T, a *diffAssets, opts Options, tl *starql.Translation) map[int64]map[string]struct{} {
	t.Helper()
	e := NewEngine(a.cat, opts)
	for _, sc := range siemens.StreamSchemas() {
		if err := e.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	windows := map[int64]map[string]struct{}{}
	var mu sync.Mutex
	sink := func(_ string, end int64, _ relation.Schema, rows []relation.Tuple) {
		mu.Lock()
		defer mu.Unlock()
		set := windows[end]
		if set == nil {
			set = map[string]struct{}{}
			windows[end] = set
		}
		for _, r := range rows {
			set[fmt.Sprint(r)] = struct{}{}
		}
	}
	for i, stmt := range tl.StreamFleet {
		if err := e.Register(fmt.Sprintf("f%03d", i), stmt, tl.Pulse, sink); err != nil {
			t.Fatalf("register member %d (%s): %v", i, stmt.String(), err)
		}
	}
	for i, el := range a.tuples {
		if err := e.Ingest(siemens.RouteName(a.routes[i]), el); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return windows
}

// renderWindows serialises the per-window answer sets deterministically
// so two fleets can be compared byte for byte.
func renderWindows(windows map[int64]map[string]struct{}) string {
	ends := make([]int64, 0, len(windows))
	for end := range windows {
		ends = append(ends, end)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	var sb []byte
	for _, end := range ends {
		rows := make([]string, 0, len(windows[end]))
		for r := range windows[end] {
			rows = append(rows, r)
		}
		sort.Strings(rows)
		sb = append(sb, fmt.Sprintf("end=%d\n", end)...)
		for _, r := range rows {
			sb = append(sb, "  "+r+"\n"...)
		}
	}
	return string(sb)
}

// TestOptimizedFleetDifferential is the end-to-end differential oracle
// for the optimizer: the constraint-pruned fleet running on an
// Optimize-enabled engine must produce byte-identical window answer
// sets to the as-written fleet on a stock engine.
func TestOptimizedFleetDifferential(t *testing.T) {
	a := diffSetup(t)
	plain := a.translate(t, false)
	pruned := a.translate(t, true)

	nPlain := len(plain.StaticFleet) + len(plain.StreamFleet)
	nPruned := len(pruned.StaticFleet) + len(pruned.StreamFleet)
	if nPruned >= nPlain {
		t.Fatalf("constraint pruning did not shrink the fleet: %d -> %d", nPlain, nPruned)
	}
	t.Logf("fleet %d -> %d members (constraint_pruned=%d fk_joins_removed=%d)",
		nPlain, nPruned, pruned.UnfoldStats.ConstraintPruned, pruned.UnfoldStats.FKJoinsRemoved)

	want := renderWindows(runFleet(t, a, Options{}, plain))
	got := renderWindows(runFleet(t, a, Options{Optimize: true}, pruned))
	if want == "" {
		t.Fatal("as-written fleet produced no windows — differential is vacuous")
	}
	if got != want {
		t.Fatalf("optimized fleet diverges from as-written fleet\n--- as-written ---\n%s\n--- optimized ---\n%s", want, got)
	}
}

// TestOptimizedFleetDifferentialChaos repeats the differential with a
// wide worker pool and the plan cache disabled so window executions of
// many fleet members run concurrently — under -race this exercises the
// StatsStore's concurrent ObserveSource/Feedback/estimate paths.
func TestOptimizedFleetDifferentialChaos(t *testing.T) {
	a := diffSetup(t)
	plain := a.translate(t, false)
	pruned := a.translate(t, true)

	want := renderWindows(runFleet(t, a, Options{Parallelism: 8}, plain))
	got := renderWindows(runFleet(t, a, Options{
		Optimize: true, Parallelism: 8, DisablePlanCache: true, ShareWindows: true,
	}, pruned))
	if want == "" {
		t.Fatal("as-written fleet produced no windows — differential is vacuous")
	}
	if got != want {
		t.Fatalf("optimized fleet diverges under parallel execution\n--- as-written ---\n%s\n--- optimized ---\n%s", want, got)
	}
}

package exastream

import (
	"reflect"
	"testing"

	"repro/internal/recovery"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

func seqTuple(i int) (stream.Timestamped, int64) {
	ts := int64(i) * 250
	return stream.Timestamped{TS: ts, Row: relation.Tuple{
		relation.Int(int64(i%10 + 1)), relation.Time(ts), relation.Float(float64(50 + i%30)),
	}}, int64(i + 1)
}

// TestExportRestoreReplayEquivalence is the engine-level half of the
// exactly-once story: a query restored from an ExportState cut, fed the
// full input again through ReplayFor, must emit exactly the windows the
// uninterrupted engine emits after the cut — the cursor silently drops
// the already-applied prefix, and restored window state supplies the
// rows that arrived before the crash.
func TestExportRestoreReplayEquivalence(t *testing.T) {
	const total, cut = 40, 25
	stmt := sql.MustParse("SELECT m.sid, m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")

	// Baseline: uninterrupted run.
	base := testRig(t, Options{})
	baseOut := &collector{}
	if err := base.Register("q", stmt, nil, baseOut.sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		el, seq := seqTuple(i)
		if err := base.IngestSeq("msmt", el, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := base.Flush(); err != nil {
		t.Fatal(err)
	}

	// Victim: ingest a prefix, then cut. Ingest is synchronous, so the
	// engine is quiesced between calls and the export is consistent.
	victim := testRig(t, Options{})
	victimOut := &collector{}
	if err := victim.Register("q", stmt, nil, victimOut.sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		el, seq := seqTuple(i)
		if err := victim.IngestSeq("msmt", el, seq); err != nil {
			t.Fatal(err)
		}
	}
	st := victim.ExportState()
	var qs *recovery.QueryState
	for i := range st.Queries {
		if st.Queries[i].ID == "q" {
			qs = &st.Queries[i]
		}
	}
	if qs == nil {
		t.Fatal("export lost query q")
	}

	// Heir: restore from the cut on a fresh engine, then replay the FULL
	// feed — the cursor must drop seqs 1..cut.
	heir := testRig(t, Options{})
	heirOut := &collector{}
	heir.ImportWCache(st.WCache)
	if err := heir.RestoreQuery("q", stmt, nil, heirOut.sink, qs, map[string]int64{"msmt": cut}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		el, seq := seqTuple(i)
		if err := heir.ReplayFor("q", "msmt", el, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := heir.Flush(); err != nil {
		t.Fatal(err)
	}

	got := append(victimOut.results, heirOut.results...)
	if !reflect.DeepEqual(got, baseOut.results) {
		t.Fatalf("victim+heir emitted %d windows, baseline %d (or contents differ):\n got %+v\nwant %+v",
			len(got), len(baseOut.results), got, baseOut.results)
	}
	if len(got) == 0 {
		t.Fatal("test vacuous: no windows emitted")
	}
}

// TestRestoreQueryWithoutSnapshotCursorsReplay covers the
// checkpoint-predates-query case: the query restores with fresh windows
// but still inherits the node cut as its cursor, so replay of the
// covered gap is applied exactly once.
func TestRestoreQueryWithoutSnapshotCursorsReplay(t *testing.T) {
	stmt := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	e := testRig(t, Options{})
	out := &collector{}
	if err := e.RestoreQuery("q", stmt, nil, out.sink, nil, map[string]int64{"msmt": 5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		el, seq := seqTuple(i)
		if err := e.ReplayFor("q", "msmt", el, seq); err != nil {
			t.Fatal(err)
		}
	}
	// Replaying the same tuples again must be a no-op.
	for i := 0; i < 12; i++ {
		el, seq := seqTuple(i)
		if err := e.ReplayFor("q", "msmt", el, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, r := range out.results {
		// seqs 1..5 (ts 0..1000) were cut away; the first window that can
		// contain replayed rows ends at 2000.
		if r.end < 2000 && len(r.rows) > 0 {
			t.Fatalf("window ending %d carries %d rows from below the cursor", r.end, len(r.rows))
		}
	}
	if out.totalRows() != 12-5 {
		t.Fatalf("replayed rows delivered = %d, want %d", out.totalRows(), 12-5)
	}
}

func TestRestoreQueryRejectsDuplicateID(t *testing.T) {
	stmt := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	e := testRig(t, Options{})
	sink := func(string, int64, relation.Schema, []relation.Tuple) {}
	if err := e.RestoreQuery("q", stmt, nil, sink, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreQuery("q", stmt, nil, sink, nil, nil); err == nil {
		t.Fatal("duplicate RestoreQuery succeeded")
	}
}

package exastream

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// testRig wires an engine with a sensors static table and a msmt stream.
func testRig(t *testing.T, opts Options) *Engine {
	t.Helper()
	cat := relation.NewCatalog()
	sensors, err := cat.Create("sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("tid", relation.TInt),
		relation.Col("kind", relation.TString),
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		sensors.MustInsert(relation.Tuple{relation.Int(i), relation.Int(i % 5), relation.String_("temp")})
	}
	e := NewEngine(cat, opts)
	if err := e.DeclareStream(stream.Schema{
		Name: "msmt",
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat),
		),
		TSCol: "ts",
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// collector is a concurrency-safe sink.
type collector struct {
	mu      sync.Mutex
	results []collected
}

type collected struct {
	qid  string
	end  int64
	rows []relation.Tuple
}

func (c *collector) sink(qid string, end int64, _ relation.Schema, rows []relation.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = append(c.results, collected{qid, end, rows})
}

func (c *collector) totalRows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.results {
		n += len(r.rows)
	}
	return n
}

func feed(t *testing.T, e *Engine, n int, stepMS int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := int64(i) * stepMS
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(int64(i%10 + 1)), relation.Time(ts), relation.Float(float64(50 + i%30)),
		}}
		if err := e.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	ok := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if err := e.Register("q1", ok, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("q1", ok, nil, c.sink); err == nil {
		t.Error("duplicate id accepted")
	}
	cases := map[string]string{
		"no stream":      "SELECT sid FROM sensors",
		"unknown stream": "SELECT x.val FROM STREAM nope [RANGE 1000 SLIDE 1000] AS x",
		"no window":      "SELECT m.val FROM STREAM msmt AS m",
	}
	for name, q := range cases {
		if err := e.Register("bad-"+name, sql.MustParse(q), nil, c.sink); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Mismatched slides across two refs.
	two := sql.MustParse(`SELECT a.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS a,
		msmt [RANGE 2000 SLIDE 500] AS b WHERE a.sid = b.sid`)
	if err := e.Register("q2", two, nil, c.sink); err == nil {
		t.Error("mismatched slides accepted")
	}
	if err := e.DeclareStream(stream.Schema{Name: "msmt", Tuple: relation.NewSchema(relation.Col("ts", relation.TTime)), TSCol: "ts"}); err == nil {
		t.Error("duplicate stream accepted")
	}
}

func TestTumblingWindowQueryEndToEnd(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse("SELECT m.sid, m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m WHERE m.val >= 50")
	if err := e.Register("q", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 100, 100) // 100 tuples, 100ms apart: 10s of data
	if c.totalRows() != 100 {
		t.Fatalf("rows out = %d, want all 100 (boundary tuples land in one window each here)", c.totalRows())
	}
	st := e.Stats()
	if st.TuplesIn != 100 || st.WindowsExecuted == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStreamStaticJoin(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, s.tid, m.val
		FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m, sensors AS s
		WHERE m.sid = s.sid`)
	if err := e.Register("join", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 50, 100)
	if c.totalRows() != 50 {
		t.Fatalf("joined rows = %d, want 50", c.totalRows())
	}
	// Every output row's tid must equal sid % 5.
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, res := range c.results {
		for _, row := range res.rows {
			sid, _ := row[0].AsInt()
			tid, _ := row[1].AsInt()
			if tid != sid%5 {
				t.Fatalf("join mismatch: sid=%d tid=%d", sid, tid)
			}
		}
	}
}

func TestAggregatePerWindow(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, avg(m.val) AS a
		FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m GROUP BY m.sid`)
	if err := e.Register("agg", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 100, 100)
	if c.totalRows() == 0 {
		t.Fatal("no aggregate output")
	}
}

func TestPulsePacing(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	pulse := &stream.Pulse{StartMS: 0, FrequencyMS: 2000}
	if err := e.Register("paced", q, pulse, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 100, 100)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range c.results {
		if r.end%2000 != 0 {
			t.Fatalf("result at non-pulse time %d", r.end)
		}
	}
}

func TestSharedWindowsAcrossQueries(t *testing.T) {
	e := testRig(t, Options{ShareWindows: true})
	c := &collector{}
	for i := 0; i < 5; i++ {
		q := sql.MustParse(fmt.Sprintf(
			"SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m WHERE m.val > %d", 40+i))
		if err := e.Register(fmt.Sprintf("q%d", i), q, nil, c.sink); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, e, 50, 100)
	e.mu.Lock()
	nw := len(e.windows)
	e.mu.Unlock()
	if nw != 1 {
		t.Fatalf("5 same-spec queries created %d shared windows, want 1", nw)
	}
	st := e.Stats()
	// One windowing pass feeds 5 queries: executions are 5x batches.
	if st.WindowsExecuted < 5*st.BatchesBuilt {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdaptiveIndexingBuildsIndex(t *testing.T) {
	e := testRig(t, Options{AdaptiveIndexing: true, AdaptiveThreshold: 3})
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, s.kind FROM STREAM msmt [RANGE 500 SLIDE 500] AS m, sensors AS s
		WHERE m.sid = s.sid`)
	if err := e.Register("adaptive", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 100, 100) // 20 windows >> threshold
	st := e.Stats()
	if st.AdaptiveIndexes != 1 {
		t.Fatalf("AdaptiveIndexes = %d, want 1", st.AdaptiveIndexes)
	}
	tb, _ := e.Catalog().Get("sensors")
	if !tb.HasIndex("sid") {
		t.Fatal("index not built on sensors.sid")
	}
	// Disabled engines never index.
	e2 := testRig(t, Options{AdaptiveIndexing: false})
	if err := e2.Register("plain", sql.MustParse(
		`SELECT m.sid FROM STREAM msmt [RANGE 500 SLIDE 500] AS m, sensors AS s WHERE m.sid = s.sid`), nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e2, 100, 100)
	if e2.Stats().AdaptiveIndexes != 0 {
		t.Error("adaptive index built despite being disabled")
	}
}

func TestSelfJoinOfStreamWindows(t *testing.T) {
	// Correlation-style query: two references to the same stream.
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse(`SELECT a.sid, b.sid FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS a,
		msmt [RANGE 1000 SLIDE 1000] AS b
		WHERE a.ts = b.ts AND a.sid < b.sid`)
	if err := e.Register("pairs", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	// Two tuples with the same timestamp in each window.
	for i := 0; i < 20; i++ {
		ts := int64(i) * 500
		for sid := int64(1); sid <= 2; sid++ {
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(sid), relation.Time(ts), relation.Float(1),
			}}
			if err := e.Ingest("msmt", el); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.totalRows() == 0 {
		t.Fatal("stream self-join produced nothing")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.results {
		for _, row := range r.rows {
			a, _ := row[0].AsInt()
			b, _ := row[1].AsInt()
			if a >= b {
				t.Fatalf("predicate violated: %v", row)
			}
		}
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	e := testRig(t, Options{})
	c := &collector{}
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if err := e.Register("q", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.Unregister("q"); err != nil {
		t.Fatal(err)
	}
	if err := e.Unregister("q"); err == nil {
		t.Error("double unregister accepted")
	}
	feed(t, e, 50, 100)
	if c.totalRows() != 0 {
		t.Fatalf("unregistered query produced %d rows", c.totalRows())
	}
	if len(e.QueryIDs()) != 0 {
		t.Errorf("QueryIDs = %v", e.QueryIDs())
	}
}

func TestUDFInContinuousQuery(t *testing.T) {
	e := testRig(t, Options{})
	e.RegisterUDF("c2f", func(args []relation.Value) (relation.Value, error) {
		f, _ := args[0].AsFloat()
		return relation.Float(f*9/5 + 32), nil
	})
	c := &collector{}
	q := sql.MustParse("SELECT c2f(m.val) AS f FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if err := e.Register("udf", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 10, 100)
	if c.totalRows() != 10 {
		t.Fatalf("rows = %d", c.totalRows())
	}
}

func TestIngestUnknownStream(t *testing.T) {
	e := testRig(t, Options{})
	if err := e.Ingest("nope", stream.Timestamped{}); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestConcurrentIngestManyQueries(t *testing.T) {
	e := testRig(t, Options{ShareWindows: true})
	c := &collector{}
	for i := 0; i < 32; i++ {
		q := sql.MustParse(fmt.Sprintf(
			"SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m WHERE m.sid = %d", i%10+1))
		if err := e.Register(fmt.Sprintf("q%02d", i), q, nil, c.sink); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, e, 500, 20)
	if c.totalRows() == 0 {
		t.Fatal("no output from 32 concurrent queries")
	}
}

package exastream

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// QueryStats returns the per-operator stats accumulated across a
// query's window executions so far, plus how many windows contributed.
// The differential oracle test compares these between the vectorized
// and row paths; the stats-driven planner consumes the same counters
// as observed cardinalities via StatsStore.Feedback.
func (e *Engine) QueryStats(id string) (stats engine.ExecStats, windows int64, err error) {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return engine.ExecStats{}, 0, fmt.Errorf("exastream: unknown query %q", id)
	}
	q.execMu.Lock()
	defer q.execMu.Unlock()
	return q.cum, q.windows, nil
}

// ExplainQuery renders a registered query's physical plan as an
// indented operator tree, annotated with the vectorized/row execution
// path. With analyze set, every operator also carries the observed
// stats accumulated across the query's window executions (calls,
// output rows, selectivity, inclusive wall time) plus an execution
// summary footer. A query that has not executed yet gets its plan
// built on the spot (without populating the cache) so EXPLAIN works
// before the first window fires.
func (e *Engine) ExplainQuery(id string, analyze bool) (string, error) {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("exastream: unknown query %q", id)
	}

	q.execMu.Lock()
	cp := q.plan
	if cp == nil {
		var err error
		if cp, err = e.buildPlan(q); err != nil {
			q.execMu.Unlock()
			return "", fmt.Errorf("exastream: query %s: %w", id, err)
		}
	}
	cum := q.cum
	windows := q.windows
	rowsOut := q.rowsOutTotal
	lastEnd := q.lastEnd
	q.execMu.Unlock()

	vec := e.opts.Vectorized == VecOn
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- query %s\n", q.id)
	fmt.Fprintf(&sb, "-- sql: %s\n", q.stmt.String())
	for i, spec := range q.specs {
		fmt.Fprintf(&sb, "-- window[%d]: %s range=%dms slide=%dms\n",
			i, q.refs[i].Table, spec.RangeMS, spec.SlideMS)
	}
	if analyze {
		fmt.Fprintf(&sb, "-- executed: windows=%d rows_out=%d last_window_end=%dms\n",
			windows, rowsOut, lastEnd)
		// With a stats store present, annotate each operator with the
		// planner's estimated rows next to the observed ones.
		var est engine.Estimates
		if e.stats != nil {
			est = engine.EstimatePlan(cp.adapted, e.stats)
		}
		sb.WriteString(engine.ExplainAnalyzeWithEstimates(cp.adapted, &cum, vec, est))
	} else {
		sb.WriteString(engine.ExplainAnalyze(cp.adapted, nil, vec))
	}
	return sb.String(), nil
}

// LagView reports every registered query's runtime position: how far
// its event-time frontier trails the engine's newest executed window,
// the window state it is holding, and its governance standing. Node
// and tenant attribution are stamped by the cluster layer.
func (e *Engine) LagView() []telemetry.QueryLag {
	e.mu.Lock()
	type target struct {
		q     *continuousQuery
		owned []*stream.TimeSlidingWindow
	}
	targets := make([]target, 0, len(e.queries))
	for _, q := range e.queries {
		t := target{q: q}
		seen := make(map[*stream.TimeSlidingWindow]bool)
		for wk, sw := range e.windows {
			mine, owned := false, true
			for _, sub := range sw.subs {
				if sub.q == q {
					mine = true
				} else {
					owned = false
				}
			}
			if !mine || seen[sw.op] {
				continue
			}
			seen[sw.op] = true
			if owned || wk.owner == q.id {
				t.owned = append(t.owned, sw.op)
			}
		}
		targets = append(targets, t)
	}
	e.mu.Unlock()

	out := make([]telemetry.QueryLag, 0, len(targets))
	var frontier int64
	for _, t := range targets {
		q := t.q
		lag := telemetry.QueryLag{ID: q.id, State: "running"}
		q.execMu.Lock()
		lag.Windows = q.windows
		lag.RowsOut = q.rowsOutTotal
		lag.LastWindowEnd = q.lastEnd
		q.execMu.Unlock()
		q.mu.Lock()
		lag.BacklogBytes = q.stagedBytes
		if q.suspended {
			lag.State = "suspended"
		}
		q.mu.Unlock()
		for _, op := range t.owned {
			lag.BacklogBytes += op.PendingBytes()
		}
		if s := q.stride.Load(); s > 1 {
			lag.Stride = s
			if lag.State == "running" {
				lag.State = "widened"
			}
		}
		if b := q.budget.Load(); b > 0 {
			lag.BudgetBytes = b
			lag.HeadroomBytes = b - lag.BacklogBytes
		}
		if lag.LastWindowEnd > frontier {
			frontier = lag.LastWindowEnd
		}
		out = append(out, lag)
	}
	for i := range out {
		if out[i].LastWindowEnd > 0 {
			out[i].WatermarkLagMS = frontier - out[i].LastWindowEnd
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Events dumps the node flight recorder (nil-safe: no recorder, no
// events).
func (e *Engine) Events() []telemetry.Event {
	return e.opts.Recorder.Events()
}

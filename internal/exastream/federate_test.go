package exastream

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

func TestFederatedTableJoinsWithStream(t *testing.T) {
	e := testRig(t, Options{})
	// External source: sensor thresholds that change between refreshes.
	limit := 75.0
	schema := relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("limit_val", relation.TFloat))
	fetch := func() ([]relation.Tuple, error) {
		var rows []relation.Tuple
		for sid := int64(1); sid <= 10; sid++ {
			rows = append(rows, relation.Tuple{relation.Int(sid), relation.Float(limit)})
		}
		return rows, nil
	}
	if err := e.RegisterFederated("limits", schema, fetch); err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, m.val FROM STREAM msmt [RANGE 500 SLIDE 500] AS m, limits AS l
		WHERE m.sid = l.sid AND m.val > l.limit_val`)
	if err := e.Register("over-limit", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	push := func(sid int64, ts int64, val float64) {
		if err := e.Ingest("msmt", stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(sid), relation.Time(ts), relation.Float(val)}}); err != nil {
			t.Fatal(err)
		}
	}
	push(1, 0, 80)
	push(1, 600, 80) // completes first window: 80 > 75 -> 1 row
	before := c.totalRows()
	if before != 1 {
		t.Fatalf("rows before refresh = %d", before)
	}
	// External source raises the limit; refresh pulls it.
	limit = 90
	if err := e.RefreshFederated("limits"); err != nil {
		t.Fatal(err)
	}
	push(1, 1200, 85) // 85 < 90 now
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.totalRows() != before+0 {
		t.Fatalf("rows after refresh = %d, want %d (85 below new limit)", c.totalRows(), before)
	}
}

func TestFederatedValidation(t *testing.T) {
	e := testRig(t, Options{})
	schema := relation.NewSchema(relation.Col("a", relation.TInt))
	if err := e.RegisterFederated("f", schema, nil); err == nil {
		t.Error("nil fetch accepted")
	}
	if err := e.RefreshFederated("missing"); err == nil {
		t.Error("unknown federated table accepted")
	}
	fail := func() ([]relation.Tuple, error) { return nil, fmt.Errorf("source down") }
	if err := e.RegisterFederated("down", schema, fail); err == nil {
		t.Error("fetch failure swallowed")
	}
	ok := func() ([]relation.Tuple, error) { return []relation.Tuple{{relation.Int(1)}}, nil }
	if err := e.RegisterFederated("f2", schema, ok); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterFederated("f2", schema, ok); err == nil {
		t.Error("duplicate federated table accepted")
	}
}

// Package exastream implements OPTIQUE's Data Stream Management System
// (challenge C3): continuous SQL(+) queries over streams and static
// tables, window sharing via wCache, native UDF registration, and
// adaptive main-memory indexing driven by runtime statistics.
//
// The execution model matches the paper: the timeSlidingWindow operator
// groups incoming tuples into window batches; each completed batch is
// evaluated as a relational query blending the batch with static tables;
// results are paced by the query's pulse.
package exastream

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Sink receives the result rows of one window evaluation of a registered
// query. Implementations must be safe for concurrent use.
type Sink func(queryID string, windowEnd int64, schema relation.Schema, rows []relation.Tuple)

// Stats aggregates engine-level counters.
type Stats struct {
	TuplesIn        int64
	BatchesBuilt    int64
	WindowsExecuted int64
	RowsOut         int64
	WCacheHits      int64
	WCacheMisses    int64
	AdaptiveIndexes int64
	LateTuples      int64
	QueryFailures   int64 // failed window executions (contained by the error hook)
	Suspensions     int64 // queries quarantined after repeated failures

	// Per-execution counters surfaced from engine.ExecStats, summed over
	// all window executions.
	RowsScanned  int64
	RowsProduced int64
	HashProbes   int64
	IndexLookups int64

	// Plan-cache lifecycle: builds (cold or invalidated), hits, and
	// re-adaptations after adaptive indexing built a new index.
	PlanBuilds    int64
	PlanCacheHits int64
	PlanReadapts  int64
}

// counters is the engine's internal mutable form of Stats. Every field
// is manipulated with sync/atomic so parallel window executions never
// serialize on e.mu just to bump a number.
type counters struct {
	tuplesIn        int64
	batchesBuilt    int64
	windowsExecuted int64
	rowsOut         int64
	adaptiveIndexes int64
	lateTuples      int64
	queryFailures   int64
	suspensions     int64
	rowsScanned     int64
	rowsProduced    int64
	hashProbes      int64
	indexLookups    int64
	planBuilds      int64
	planCacheHits   int64
	planReadapts    int64
}

// Options configures an Engine.
type Options struct {
	// AdaptiveIndexing enables runtime index building on static tables
	// (the paper's adaptive indexing optimisation). Disabled engines keep
	// scanning, which the ablation benchmark measures.
	AdaptiveIndexing bool
	// AdaptiveThreshold is the number of un-indexed lookups on the same
	// (table, columns) after which an index is built. Default 3.
	AdaptiveThreshold int
	// ShareWindows routes window materialisation through wCache so
	// queries with the same (stream, window) share one pass. Default on
	// via NewEngine.
	ShareWindows bool
	// OnQueryError, when set, receives per-query window-execution
	// failures instead of them aborting Ingest/Flush: one poison query
	// no longer fails every other query sharing the tick. The cluster
	// runtime installs a hook that records errors in the node's ring.
	OnQueryError func(queryID string, err error)
	// QuarantineAfter suspends a query once it fails this many
	// consecutive window executions (poison-query isolation); suspended
	// queries skip execution until Resume. 0 disables quarantine.
	// Quarantine (like OnQueryError) contains execution errors rather
	// than returning them from Ingest/Flush.
	QuarantineAfter int
	// Parallelism bounds the worker pool that executes continuous
	// queries made ready by one ingest/flush tick. 0 (the default) uses
	// GOMAXPROCS; 1 or less forces sequential execution. Windows of a
	// single query always run sequentially in window-end order,
	// whatever the pool size.
	Parallelism int
	// DisablePlanCache rebuilds every query's physical plan on every
	// window execution (the pre-compile-once behaviour); the ablation
	// benchmarks measure the difference.
	DisablePlanCache bool
	// InterpretExprs evaluates expressions with the engine's reference
	// interpreter instead of compiled closures. Together with
	// DisablePlanCache this reproduces the pre-compile-once execution
	// pipeline end to end; it exists for ablation and debugging.
	InterpretExprs bool
}

// Engine is one ExaStream instance (one per worker node in the cluster).
type Engine struct {
	catalog *relation.Catalog
	funcs   *engine.FuncRegistry

	mu        sync.Mutex
	streams   map[string]stream.Schema
	windows   map[windowKey]*sharedWindow
	queries   map[string]*continuousQuery
	wcache    *stream.WCache
	archives  map[string][]*relation.Table // stream -> archive tables
	federated map[string]FetchFunc
	opts      Options
	probes    map[string]int // adaptive indexing: (table|cols) -> scans

	// indexEpoch (atomic) counts adaptive indexes built; cached plans
	// compare it to theirs and re-adapt when it moved.
	indexEpoch int64
	ctr        counters
}

type windowKey struct {
	stream string
	spec   stream.WindowSpec
}

// sharedWindow is one windowing pass over a stream, shared by all
// subscribed queries (the wCache idea).
type sharedWindow struct {
	op   *stream.TimeSlidingWindow
	subs []*querySub
}

// querySub subscribes one stream reference of one query to a shared
// window.
type querySub struct {
	q      *continuousQuery
	refIdx int
}

// continuousQuery is one registered SQL(+) statement.
type continuousQuery struct {
	id    string
	stmt  *sql.SelectStmt
	refs  []*sql.TableRef // stream references, in discovery order
	specs []stream.WindowSpec
	pulse *stream.Pulse
	sink  Sink

	mu        sync.Mutex
	pending   map[int64]map[int]stream.Batch // window end -> refIdx -> batch
	failures  int                            // consecutive failed executions
	suspended bool                           // quarantined: skips execution until Resume

	// execMu serializes window executions of this query and guards plan;
	// distinct queries execute concurrently on the fleet pool.
	execMu sync.Mutex
	plan   *cachedPlan
}

// cachedPlan is a continuous query's compiled physical plan, built once
// and re-executed every tick by rebinding the window sources. It is
// invalidated (rebuilt) when the catalog's table set changes and
// re-adapted when adaptive indexing builds a new index.
type cachedPlan struct {
	built   engine.Plan                // optimized plan, pre-adaptation
	adapted engine.Plan                // adaptPlan output actually executed
	sources []*engine.WindowSourcePlan // one per stream ref, rebound per tick
	probes  []probe
	epoch   int64  // e.indexEpoch the plan was adapted at
	gen     uint64 // catalog generation the plan was built at
}

// NewEngine builds an engine over a static catalog.
func NewEngine(cat *relation.Catalog, opts Options) *Engine {
	if opts.AdaptiveThreshold <= 0 {
		opts.AdaptiveThreshold = 3
	}
	return &Engine{
		catalog:   cat,
		funcs:     engine.NewFuncRegistry(),
		streams:   make(map[string]stream.Schema),
		windows:   make(map[windowKey]*sharedWindow),
		queries:   make(map[string]*continuousQuery),
		wcache:    stream.NewWCache(),
		archives:  make(map[string][]*relation.Table),
		federated: make(map[string]FetchFunc),
		opts:      opts,
		probes:    make(map[string]int),
	}
}

// Catalog returns the static catalog.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }

// RegisterUDF installs a scalar UDF usable from SQL(+) queries.
func (e *Engine) RegisterUDF(name string, f engine.ScalarFunc) {
	e.funcs.Register(name, f)
}

// DeclareStream registers a stream schema.
func (e *Engine) DeclareStream(s stream.Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := e.streams[key]; ok {
		return fmt.Errorf("exastream: stream %q already declared", s.Name)
	}
	e.streams[key] = s
	return nil
}

// StreamSchema returns a declared stream's schema.
func (e *Engine) StreamSchema(name string) (stream.Schema, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[strings.ToLower(name)]
	if !ok {
		return stream.Schema{}, fmt.Errorf("exastream: unknown stream %q", name)
	}
	return s, nil
}

// Register adds a continuous query. The statement's stream references
// must carry window specs with a common slide; the optional pulse paces
// output. Register returns an error for unknown streams or invalid
// windows.
func (e *Engine) Register(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink Sink) error {
	if pulse != nil {
		if err := pulse.Validate(); err != nil {
			return err
		}
	}
	refs := collectStreamRefs(stmt)
	if len(refs) == 0 {
		return fmt.Errorf("exastream: query %s references no stream; run it with engine.Run instead", id)
	}
	q := &continuousQuery{
		id: id, stmt: stmt, refs: refs, pulse: pulse, sink: sink,
		pending: make(map[int64]map[int]stream.Batch),
	}
	if err := e.registerLocked(q); err != nil {
		return err
	}
	// Build the physical plan eagerly so the very first window already
	// runs on the cached, compiled path. A query that fails to build
	// (missing table, bad expression) stays registered: the error
	// resurfaces on each execution attempt and flows through the usual
	// containment/quarantine machinery.
	if !e.opts.DisablePlanCache {
		if cp, err := e.buildPlan(q); err == nil {
			atomic.AddInt64(&e.ctr.planBuilds, 1)
			q.execMu.Lock()
			if q.plan == nil {
				q.plan = cp
			}
			q.execMu.Unlock()
		}
	}
	return nil
}

func (e *Engine) registerLocked(q *continuousQuery) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[q.id]; dup {
		return fmt.Errorf("exastream: query %q already registered", q.id)
	}
	var slide int64 = -1
	for i, ref := range q.refs {
		if _, ok := e.streams[strings.ToLower(ref.Table)]; !ok {
			return fmt.Errorf("exastream: query %s: unknown stream %q", q.id, ref.Table)
		}
		if ref.Window == nil {
			return fmt.Errorf("exastream: query %s: stream %q lacks a window", q.id, ref.Table)
		}
		spec := stream.WindowSpec{RangeMS: ref.Window.RangeMS, SlideMS: ref.Window.SlideMS}
		if err := spec.Validate(); err != nil {
			return err
		}
		if slide == -1 {
			slide = spec.SlideMS
		} else if slide != spec.SlideMS {
			return fmt.Errorf("exastream: query %s: stream windows must share a slide", q.id)
		}
		q.specs = append(q.specs, spec)
		e.subscribeLocked(q, i, ref.Table, spec)
	}
	e.queries[q.id] = q
	e.wcache.Register(q.id)
	return nil
}

func (e *Engine) subscribeLocked(q *continuousQuery, refIdx int, streamName string, spec stream.WindowSpec) {
	key := windowKey{strings.ToLower(streamName), spec}
	sw, ok := e.windows[key]
	if !ok {
		op, err := stream.NewTimeSlidingWindow(spec)
		if err != nil {
			panic(err) // spec validated above
		}
		sw = &sharedWindow{op: op}
		e.windows[key] = sw
	}
	sw.subs = append(sw.subs, &querySub{q: q, refIdx: refIdx})
}

// Unregister removes a query.
func (e *Engine) Unregister(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.queries[id]; !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	delete(e.queries, id)
	e.wcache.Unregister(id)
	for _, sw := range e.windows {
		kept := sw.subs[:0]
		for _, s := range sw.subs {
			if s.q.id != id {
				kept = append(kept, s)
			}
		}
		sw.subs = kept
	}
	return nil
}

// QueryIDs lists registered queries, sorted.
func (e *Engine) QueryIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ingest pushes one tuple into a stream, advancing every shared window
// over it and executing any queries whose windows completed.
func (e *Engine) Ingest(streamName string, el stream.Timestamped) error {
	e.mu.Lock()
	key := strings.ToLower(streamName)
	if _, ok := e.streams[key]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("exastream: unknown stream %q", streamName)
	}
	atomic.AddInt64(&e.ctr.tuplesIn, 1)
	if err := e.archiveLocked(key, el); err != nil {
		e.mu.Unlock()
		return err
	}
	var fires []delivery
	for wk, sw := range e.windows {
		if wk.stream != key {
			continue
		}
		before := sw.op.Late
		batches := sw.op.Push(el)
		atomic.AddInt64(&e.ctr.lateTuples, sw.op.Late-before)
		for _, b := range batches {
			atomic.AddInt64(&e.ctr.batchesBuilt, 1)
			if e.opts.ShareWindows {
				e.wcache.Put(streamName, wk.spec, b)
			}
			for _, sub := range sw.subs {
				fires = append(fires, delivery{sub, b})
			}
		}
	}
	e.mu.Unlock()

	return e.dispatch(fires)
}

// Flush completes all open windows (end of replay) and executes the
// remaining batches.
func (e *Engine) Flush() error {
	e.mu.Lock()
	var fires []delivery
	for wk, sw := range e.windows {
		for _, b := range sw.op.Flush() {
			atomic.AddInt64(&e.ctr.batchesBuilt, 1)
			if e.opts.ShareWindows {
				e.wcache.Put(wk.stream, wk.spec, b)
			}
			for _, sub := range sw.subs {
				fires = append(fires, delivery{sub, b})
			}
		}
	}
	e.mu.Unlock()
	return e.dispatch(fires)
}

// delivery is one window batch headed for one stream reference of one
// query.
type delivery struct {
	sub   *querySub
	batch stream.Batch
}

// execItem is one ready window execution: every stream reference of the
// query has its batch for this window end.
type execItem struct {
	q       *continuousQuery
	end     int64
	batches map[int]stream.Batch
}

// dispatch stages the tick's deliveries and executes every query that
// became ready, in parallel across queries when the pool allows.
func (e *Engine) dispatch(fires []delivery) error {
	var ready []execItem
	for _, f := range fires {
		if it, ok := e.stage(f.sub.q, f.sub.refIdx, f.batch); ok {
			ready = append(ready, it)
		}
	}
	return e.runReady(ready)
}

// stage delivers a batch to one stream reference of a query and reports
// the execution item once batches for every reference at that window
// end are in.
func (e *Engine) stage(q *continuousQuery, refIdx int, b stream.Batch) (execItem, bool) {
	// Pulse pacing comes first: a batch for a non-pulse tick must never
	// enter the pending map, or multi-ref queries leak partial pending
	// entries for window ends that pacing would discard anyway.
	if q.pulse != nil {
		if (b.End-q.pulse.StartMS)%q.pulse.FrequencyMS != 0 || b.End < q.pulse.StartMS {
			return execItem{}, false
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.suspended {
		return execItem{}, false
	}
	m, ok := q.pending[b.End]
	if !ok {
		m = make(map[int]stream.Batch)
		q.pending[b.End] = m
	}
	m[refIdx] = b
	if len(m) != len(q.refs) {
		return execItem{}, false
	}
	delete(q.pending, b.End)
	return execItem{q: q, end: b.End, batches: m}, true
}

// parallelism resolves Options.Parallelism: 0 means GOMAXPROCS,
// anything below 1 means sequential.
func (e *Engine) parallelism() int {
	p := e.opts.Parallelism
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// runReady executes the tick's ready windows. Items are grouped by
// query — one query's windows always run sequentially in window-end
// order, so sink calls stay ordered per query — and distinct queries
// fan out over a bounded worker pool.
func (e *Engine) runReady(items []execItem) error {
	if len(items) == 0 {
		return nil
	}
	var order []*continuousQuery
	groups := make(map[*continuousQuery][]execItem)
	for _, it := range items {
		if _, ok := groups[it.q]; !ok {
			order = append(order, it.q)
		}
		groups[it.q] = append(groups[it.q], it)
	}
	for _, q := range order {
		g := groups[q]
		sort.Slice(g, func(i, j int) bool { return g[i].end < g[j].end })
	}
	workers := e.parallelism()
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		for _, q := range order {
			for _, it := range groups[q] {
				if err := e.executeItem(it); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Fork-join pool: each task is one query's ordered run of windows.
	// Panics (fault injection, poison UDFs) are captured per task and
	// re-raised on the calling goroutine after the join, so the cluster
	// supervisor — whose recover lives on the worker goroutine calling
	// Ingest/Flush — still observes them.
	errs := make([]error, len(order))
	panics := make([]any, len(order))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range tasks {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[gi] = r
						}
					}()
					for _, it := range groups[order[gi]] {
						if err := e.executeItem(it); err != nil {
							errs[gi] = err
							return
						}
					}
				}()
			}
		}()
	}
	for gi := range order {
		tasks <- gi
	}
	close(tasks)
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildPlan constructs, optimizes and adapts a query's physical plan
// with every stream reference resolved to a rebindable window source.
func (e *Engine) buildPlan(q *continuousQuery) (*cachedPlan, error) {
	sources := make([]*engine.WindowSourcePlan, len(q.refs))
	base := engine.CatalogResolver(e.catalog)
	resolver := func(tr *sql.TableRef) (engine.Plan, error) {
		if !tr.IsStream {
			return base(tr)
		}
		for i, ref := range q.refs {
			if ref == tr {
				if sources[i] == nil {
					ss, err := e.StreamSchema(tr.Table)
					if err != nil {
						return nil, err
					}
					sources[i] = engine.NewWindowSourcePlan(tr.Name(), ss.Tuple.Qualify(tr.Name()))
				}
				return sources[i], nil
			}
		}
		return nil, fmt.Errorf("exastream: unresolved stream reference %q", tr.Table)
	}
	built, err := engine.Build(q.stmt, resolver)
	if err != nil {
		return nil, err
	}
	adapted, probes := e.adaptPlan(built)
	return &cachedPlan{
		built: built, adapted: adapted, sources: sources, probes: probes,
		epoch: atomic.LoadInt64(&e.indexEpoch), gen: e.catalog.Generation(),
	}, nil
}

// executeItem evaluates one ready window of one query on its cached
// plan, rebuilding or re-adapting the plan first when the cache is
// cold or stale.
func (e *Engine) executeItem(it execItem) error {
	q := it.q
	q.execMu.Lock()
	defer q.execMu.Unlock()
	cp := q.plan
	epoch := atomic.LoadInt64(&e.indexEpoch)
	gen := e.catalog.Generation()
	switch {
	case cp == nil || e.opts.DisablePlanCache || cp.gen != gen:
		var err error
		cp, err = e.buildPlan(q)
		if err != nil {
			return e.containQueryError(q, fmt.Errorf("exastream: query %s: %w", q.id, err))
		}
		atomic.AddInt64(&e.ctr.planBuilds, 1)
		if e.opts.DisablePlanCache {
			q.plan = nil
		} else {
			q.plan = cp
		}
	case cp.epoch != epoch:
		// Adaptive indexing built an index since this plan was adapted:
		// re-run adaptation so eligible scans become index lookups.
		cp.adapted, cp.probes = e.adaptPlan(cp.built)
		cp.epoch = epoch
		atomic.AddInt64(&e.ctr.planReadapts, 1)
	default:
		atomic.AddInt64(&e.ctr.planCacheHits, 1)
	}
	for i, src := range cp.sources {
		if src != nil {
			src.Bind(it.batches[i].Rows)
		}
	}
	ctx := &engine.ExecContext{Catalog: e.catalog, Funcs: e.funcs, Interpret: e.opts.InterpretExprs}
	rows, err := cp.adapted.Execute(ctx)
	atomic.AddInt64(&e.ctr.rowsScanned, ctx.Stats.RowsScanned)
	atomic.AddInt64(&e.ctr.rowsProduced, ctx.Stats.RowsProduced)
	atomic.AddInt64(&e.ctr.hashProbes, ctx.Stats.HashProbes)
	atomic.AddInt64(&e.ctr.indexLookups, ctx.Stats.IndexLookups)
	if err != nil {
		return e.containQueryError(q, fmt.Errorf("exastream: query %s: %w", q.id, err))
	}
	q.mu.Lock()
	q.failures = 0
	q.mu.Unlock()
	e.noteProbes(cp.probes)
	atomic.AddInt64(&e.ctr.windowsExecuted, 1)
	atomic.AddInt64(&e.ctr.rowsOut, int64(len(rows)))
	e.wcache.Advance(q.id, it.end)
	if q.sink != nil {
		q.sink(q.id, it.end, cp.adapted.Schema(), rows)
	}
	return nil
}

// containQueryError handles a failed window execution. With an error
// hook or quarantine configured, the failure is counted against the
// query (suspending it after QuarantineAfter consecutive failures),
// reported through the hook, and contained — Ingest/Flush proceed for
// the other queries. Otherwise the error propagates as before.
func (e *Engine) containQueryError(q *continuousQuery, err error) error {
	if e.opts.OnQueryError == nil && e.opts.QuarantineAfter <= 0 {
		return err
	}
	q.mu.Lock()
	q.failures++
	suspend := e.opts.QuarantineAfter > 0 && q.failures >= e.opts.QuarantineAfter && !q.suspended
	if suspend {
		q.suspended = true
	}
	q.mu.Unlock()
	atomic.AddInt64(&e.ctr.queryFailures, 1)
	if suspend {
		atomic.AddInt64(&e.ctr.suspensions, 1)
	}
	if e.opts.OnQueryError != nil {
		e.opts.OnQueryError(q.id, err)
	}
	return nil
}

// SuspendedQueries lists quarantined queries, sorted.
func (e *Engine) SuspendedQueries() []string {
	e.mu.Lock()
	qs := make([]*continuousQuery, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	var out []string
	for _, q := range qs {
		q.mu.Lock()
		if q.suspended {
			out = append(out, q.id)
		}
		q.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Resume lifts a query's quarantine, resets its failure count, and
// drops its cached plan — whatever poisoned the query may have been
// fixed by a catalog or UDF change, so the next window replans from
// scratch.
func (e *Engine) Resume(id string) error {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	q.mu.Lock()
	q.suspended = false
	q.failures = 0
	q.mu.Unlock()
	q.execMu.Lock()
	q.plan = nil
	q.execMu.Unlock()
	return nil
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		TuplesIn:        atomic.LoadInt64(&e.ctr.tuplesIn),
		BatchesBuilt:    atomic.LoadInt64(&e.ctr.batchesBuilt),
		WindowsExecuted: atomic.LoadInt64(&e.ctr.windowsExecuted),
		RowsOut:         atomic.LoadInt64(&e.ctr.rowsOut),
		AdaptiveIndexes: atomic.LoadInt64(&e.ctr.adaptiveIndexes),
		LateTuples:      atomic.LoadInt64(&e.ctr.lateTuples),
		QueryFailures:   atomic.LoadInt64(&e.ctr.queryFailures),
		Suspensions:     atomic.LoadInt64(&e.ctr.suspensions),
		RowsScanned:     atomic.LoadInt64(&e.ctr.rowsScanned),
		RowsProduced:    atomic.LoadInt64(&e.ctr.rowsProduced),
		HashProbes:      atomic.LoadInt64(&e.ctr.hashProbes),
		IndexLookups:    atomic.LoadInt64(&e.ctr.indexLookups),
		PlanBuilds:      atomic.LoadInt64(&e.ctr.planBuilds),
		PlanCacheHits:   atomic.LoadInt64(&e.ctr.planCacheHits),
		PlanReadapts:    atomic.LoadInt64(&e.ctr.planReadapts),
	}
	e.mu.Lock()
	s.WCacheHits, s.WCacheMisses = e.wcache.Hits, e.wcache.Misses
	e.mu.Unlock()
	return s
}

// collectStreamRefs walks the statement (all union branches, joins and
// subqueries) and returns pointers to every stream TableRef.
func collectStreamRefs(stmt *sql.SelectStmt) []*sql.TableRef {
	var out []*sql.TableRef
	var visitRef func(tr *sql.TableRef)
	var visitStmt func(s *sql.SelectStmt)
	visitRef = func(tr *sql.TableRef) {
		if tr.IsStream {
			out = append(out, tr)
		}
		if tr.Subquery != nil {
			visitStmt(tr.Subquery)
		}
		for i := range tr.Joins {
			visitRef(tr.Joins[i].Right)
		}
	}
	visitStmt = func(s *sql.SelectStmt) {
		for _, b := range s.Branches() {
			for _, tr := range b.From {
				visitRef(tr)
			}
		}
	}
	visitStmt(stmt)
	return out
}

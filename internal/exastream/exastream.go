// Package exastream implements OPTIQUE's Data Stream Management System
// (challenge C3): continuous SQL(+) queries over streams and static
// tables, window sharing via wCache, native UDF registration, and
// adaptive main-memory indexing driven by runtime statistics.
//
// The execution model matches the paper: the timeSlidingWindow operator
// groups incoming tuples into window batches; each completed batch is
// evaluated as a relational query blending the batch with static tables;
// results are paced by the query's pulse.
package exastream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Sink receives the result rows of one window evaluation of a registered
// query. Implementations must be safe for concurrent use.
type Sink func(queryID string, windowEnd int64, schema relation.Schema, rows []relation.Tuple)

// Stats aggregates engine-level counters.
type Stats struct {
	TuplesIn        int64
	BatchesBuilt    int64
	WindowsExecuted int64
	RowsOut         int64
	WCacheHits      int64
	WCacheMisses    int64
	AdaptiveIndexes int64
	LateTuples      int64
	QueryFailures   int64 // failed window executions (contained by the error hook)
	Suspensions     int64 // queries quarantined after repeated failures
}

// Options configures an Engine.
type Options struct {
	// AdaptiveIndexing enables runtime index building on static tables
	// (the paper's adaptive indexing optimisation). Disabled engines keep
	// scanning, which the ablation benchmark measures.
	AdaptiveIndexing bool
	// AdaptiveThreshold is the number of un-indexed lookups on the same
	// (table, columns) after which an index is built. Default 3.
	AdaptiveThreshold int
	// ShareWindows routes window materialisation through wCache so
	// queries with the same (stream, window) share one pass. Default on
	// via NewEngine.
	ShareWindows bool
	// OnQueryError, when set, receives per-query window-execution
	// failures instead of them aborting Ingest/Flush: one poison query
	// no longer fails every other query sharing the tick. The cluster
	// runtime installs a hook that records errors in the node's ring.
	OnQueryError func(queryID string, err error)
	// QuarantineAfter suspends a query once it fails this many
	// consecutive window executions (poison-query isolation); suspended
	// queries skip execution until Resume. 0 disables quarantine.
	// Quarantine (like OnQueryError) contains execution errors rather
	// than returning them from Ingest/Flush.
	QuarantineAfter int
}

// Engine is one ExaStream instance (one per worker node in the cluster).
type Engine struct {
	catalog *relation.Catalog
	funcs   *engine.FuncRegistry

	mu        sync.Mutex
	streams   map[string]stream.Schema
	windows   map[windowKey]*sharedWindow
	queries   map[string]*continuousQuery
	wcache    *stream.WCache
	archives  map[string][]*relation.Table // stream -> archive tables
	federated map[string]FetchFunc
	opts      Options
	probes    map[string]int // adaptive indexing: (table|cols) -> scans
	stats     Stats
}

type windowKey struct {
	stream string
	spec   stream.WindowSpec
}

// sharedWindow is one windowing pass over a stream, shared by all
// subscribed queries (the wCache idea).
type sharedWindow struct {
	op   *stream.TimeSlidingWindow
	subs []*querySub
}

// querySub subscribes one stream reference of one query to a shared
// window.
type querySub struct {
	q      *continuousQuery
	refIdx int
}

// continuousQuery is one registered SQL(+) statement.
type continuousQuery struct {
	id    string
	stmt  *sql.SelectStmt
	refs  []*sql.TableRef // stream references, in discovery order
	specs []stream.WindowSpec
	pulse *stream.Pulse
	sink  Sink

	mu        sync.Mutex
	pending   map[int64]map[int]stream.Batch // window end -> refIdx -> batch
	failures  int                            // consecutive failed executions
	suspended bool                           // quarantined: skips execution until Resume
}

// NewEngine builds an engine over a static catalog.
func NewEngine(cat *relation.Catalog, opts Options) *Engine {
	if opts.AdaptiveThreshold <= 0 {
		opts.AdaptiveThreshold = 3
	}
	return &Engine{
		catalog:   cat,
		funcs:     engine.NewFuncRegistry(),
		streams:   make(map[string]stream.Schema),
		windows:   make(map[windowKey]*sharedWindow),
		queries:   make(map[string]*continuousQuery),
		wcache:    stream.NewWCache(),
		archives:  make(map[string][]*relation.Table),
		federated: make(map[string]FetchFunc),
		opts:      opts,
		probes:    make(map[string]int),
	}
}

// Catalog returns the static catalog.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }

// RegisterUDF installs a scalar UDF usable from SQL(+) queries.
func (e *Engine) RegisterUDF(name string, f engine.ScalarFunc) {
	e.funcs.Register(name, f)
}

// DeclareStream registers a stream schema.
func (e *Engine) DeclareStream(s stream.Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := e.streams[key]; ok {
		return fmt.Errorf("exastream: stream %q already declared", s.Name)
	}
	e.streams[key] = s
	return nil
}

// StreamSchema returns a declared stream's schema.
func (e *Engine) StreamSchema(name string) (stream.Schema, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[strings.ToLower(name)]
	if !ok {
		return stream.Schema{}, fmt.Errorf("exastream: unknown stream %q", name)
	}
	return s, nil
}

// Register adds a continuous query. The statement's stream references
// must carry window specs with a common slide; the optional pulse paces
// output. Register returns an error for unknown streams or invalid
// windows.
func (e *Engine) Register(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink Sink) error {
	if pulse != nil {
		if err := pulse.Validate(); err != nil {
			return err
		}
	}
	refs := collectStreamRefs(stmt)
	if len(refs) == 0 {
		return fmt.Errorf("exastream: query %s references no stream; run it with engine.Run instead", id)
	}
	q := &continuousQuery{
		id: id, stmt: stmt, refs: refs, pulse: pulse, sink: sink,
		pending: make(map[int64]map[int]stream.Batch),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[id]; dup {
		return fmt.Errorf("exastream: query %q already registered", id)
	}
	var slide int64 = -1
	for i, ref := range refs {
		if _, ok := e.streams[strings.ToLower(ref.Table)]; !ok {
			return fmt.Errorf("exastream: query %s: unknown stream %q", id, ref.Table)
		}
		if ref.Window == nil {
			return fmt.Errorf("exastream: query %s: stream %q lacks a window", id, ref.Table)
		}
		spec := stream.WindowSpec{RangeMS: ref.Window.RangeMS, SlideMS: ref.Window.SlideMS}
		if err := spec.Validate(); err != nil {
			return err
		}
		if slide == -1 {
			slide = spec.SlideMS
		} else if slide != spec.SlideMS {
			return fmt.Errorf("exastream: query %s: stream windows must share a slide", id)
		}
		q.specs = append(q.specs, spec)
		e.subscribeLocked(q, i, ref.Table, spec)
	}
	e.queries[id] = q
	e.wcache.Register(id)
	return nil
}

func (e *Engine) subscribeLocked(q *continuousQuery, refIdx int, streamName string, spec stream.WindowSpec) {
	key := windowKey{strings.ToLower(streamName), spec}
	sw, ok := e.windows[key]
	if !ok {
		op, err := stream.NewTimeSlidingWindow(spec)
		if err != nil {
			panic(err) // spec validated above
		}
		sw = &sharedWindow{op: op}
		e.windows[key] = sw
	}
	sw.subs = append(sw.subs, &querySub{q: q, refIdx: refIdx})
}

// Unregister removes a query.
func (e *Engine) Unregister(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.queries[id]; !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	delete(e.queries, id)
	e.wcache.Unregister(id)
	for _, sw := range e.windows {
		kept := sw.subs[:0]
		for _, s := range sw.subs {
			if s.q.id != id {
				kept = append(kept, s)
			}
		}
		sw.subs = kept
	}
	return nil
}

// QueryIDs lists registered queries, sorted.
func (e *Engine) QueryIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ingest pushes one tuple into a stream, advancing every shared window
// over it and executing any queries whose windows completed.
func (e *Engine) Ingest(streamName string, el stream.Timestamped) error {
	e.mu.Lock()
	key := strings.ToLower(streamName)
	if _, ok := e.streams[key]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("exastream: unknown stream %q", streamName)
	}
	e.stats.TuplesIn++
	if err := e.archiveLocked(key, el); err != nil {
		e.mu.Unlock()
		return err
	}
	type fire struct {
		sub   *querySub
		batch stream.Batch
	}
	var fires []fire
	for wk, sw := range e.windows {
		if wk.stream != key {
			continue
		}
		before := sw.op.Late
		batches := sw.op.Push(el)
		e.stats.LateTuples += sw.op.Late - before
		for _, b := range batches {
			e.stats.BatchesBuilt++
			if e.opts.ShareWindows {
				e.wcache.Put(streamName, wk.spec, b)
			}
			for _, sub := range sw.subs {
				fires = append(fires, fire{sub, b})
			}
		}
	}
	e.mu.Unlock()

	for _, f := range fires {
		if err := e.offer(f.sub.q, f.sub.refIdx, f.batch); err != nil {
			return err
		}
	}
	return nil
}

// Flush completes all open windows (end of replay) and executes the
// remaining batches.
func (e *Engine) Flush() error {
	e.mu.Lock()
	type fire struct {
		sub   *querySub
		batch stream.Batch
	}
	var fires []fire
	for wk, sw := range e.windows {
		for _, b := range sw.op.Flush() {
			e.stats.BatchesBuilt++
			if e.opts.ShareWindows {
				e.wcache.Put(wk.stream, wk.spec, b)
			}
			for _, sub := range sw.subs {
				fires = append(fires, fire{sub, b})
			}
		}
	}
	e.mu.Unlock()
	for _, f := range fires {
		if err := e.offer(f.sub.q, f.sub.refIdx, f.batch); err != nil {
			return err
		}
	}
	return nil
}

// offer delivers a batch to one stream reference of a query and executes
// the query when batches for every reference at that window end are in.
func (e *Engine) offer(q *continuousQuery, refIdx int, b stream.Batch) error {
	q.mu.Lock()
	if q.suspended {
		q.mu.Unlock()
		return nil
	}
	m, ok := q.pending[b.End]
	if !ok {
		m = make(map[int]stream.Batch)
		q.pending[b.End] = m
	}
	m[refIdx] = b
	ready := len(m) == len(q.refs)
	if ready {
		delete(q.pending, b.End)
	}
	q.mu.Unlock()
	if !ready {
		return nil
	}
	// Pulse pacing: only emit on pulse ticks.
	if q.pulse != nil {
		if (b.End-q.pulse.StartMS)%q.pulse.FrequencyMS != 0 || b.End < q.pulse.StartMS {
			return nil
		}
	}
	return e.execute(q, b.End, m)
}

// execute evaluates the query with each stream reference bound to its
// window batch.
func (e *Engine) execute(q *continuousQuery, windowEnd int64, batches map[int]stream.Batch) error {
	resolver := e.resolverFor(q, batches)
	plan, err := engine.Build(q.stmt, resolver)
	if err != nil {
		return e.containQueryError(q, fmt.Errorf("exastream: query %s: %w", q.id, err))
	}
	plan, probes := e.adaptPlan(plan)
	ctx := &engine.ExecContext{Catalog: e.catalog, Funcs: e.funcs}
	rows, err := plan.Execute(ctx)
	if err != nil {
		return e.containQueryError(q, fmt.Errorf("exastream: query %s: %w", q.id, err))
	}
	q.mu.Lock()
	q.failures = 0
	q.mu.Unlock()
	e.noteProbes(probes)
	e.mu.Lock()
	e.stats.WindowsExecuted++
	e.stats.RowsOut += int64(len(rows))
	e.mu.Unlock()
	e.wcache.Advance(q.id, windowEnd)
	if q.sink != nil {
		q.sink(q.id, windowEnd, plan.Schema(), rows)
	}
	return nil
}

// containQueryError handles a failed window execution. With an error
// hook or quarantine configured, the failure is counted against the
// query (suspending it after QuarantineAfter consecutive failures),
// reported through the hook, and contained — Ingest/Flush proceed for
// the other queries. Otherwise the error propagates as before.
func (e *Engine) containQueryError(q *continuousQuery, err error) error {
	if e.opts.OnQueryError == nil && e.opts.QuarantineAfter <= 0 {
		return err
	}
	q.mu.Lock()
	q.failures++
	suspend := e.opts.QuarantineAfter > 0 && q.failures >= e.opts.QuarantineAfter && !q.suspended
	if suspend {
		q.suspended = true
	}
	q.mu.Unlock()
	e.mu.Lock()
	e.stats.QueryFailures++
	if suspend {
		e.stats.Suspensions++
	}
	e.mu.Unlock()
	if e.opts.OnQueryError != nil {
		e.opts.OnQueryError(q.id, err)
	}
	return nil
}

// SuspendedQueries lists quarantined queries, sorted.
func (e *Engine) SuspendedQueries() []string {
	e.mu.Lock()
	qs := make([]*continuousQuery, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	var out []string
	for _, q := range qs {
		q.mu.Lock()
		if q.suspended {
			out = append(out, q.id)
		}
		q.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Resume lifts a query's quarantine and resets its failure count.
func (e *Engine) Resume(id string) error {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	q.mu.Lock()
	q.suspended = false
	q.failures = 0
	q.mu.Unlock()
	return nil
}

// resolverFor maps stream references to their window batches and tables
// to catalog scans.
func (e *Engine) resolverFor(q *continuousQuery, batches map[int]stream.Batch) engine.TableResolver {
	base := engine.CatalogResolver(e.catalog)
	return func(tr *sql.TableRef) (engine.Plan, error) {
		if !tr.IsStream {
			return base(tr)
		}
		for i, ref := range q.refs {
			if ref == tr {
				ss, err := e.StreamSchema(tr.Table)
				if err != nil {
					return nil, err
				}
				b := batches[i]
				return engine.NewValuesPlan(tr.Name(), ss.Tuple.Qualify(tr.Name()), b.Rows), nil
			}
		}
		return nil, fmt.Errorf("exastream: unresolved stream reference %q", tr.Table)
	}
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.WCacheHits, s.WCacheMisses = e.wcache.Hits, e.wcache.Misses
	return s
}

// collectStreamRefs walks the statement (all union branches, joins and
// subqueries) and returns pointers to every stream TableRef.
func collectStreamRefs(stmt *sql.SelectStmt) []*sql.TableRef {
	var out []*sql.TableRef
	var visitRef func(tr *sql.TableRef)
	var visitStmt func(s *sql.SelectStmt)
	visitRef = func(tr *sql.TableRef) {
		if tr.IsStream {
			out = append(out, tr)
		}
		if tr.Subquery != nil {
			visitStmt(tr.Subquery)
		}
		for i := range tr.Joins {
			visitRef(tr.Joins[i].Right)
		}
	}
	visitStmt = func(s *sql.SelectStmt) {
		for _, b := range s.Branches() {
			for _, tr := range b.From {
				visitRef(tr)
			}
		}
	}
	visitStmt(stmt)
	return out
}

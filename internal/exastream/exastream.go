// Package exastream implements OPTIQUE's Data Stream Management System
// (challenge C3): continuous SQL(+) queries over streams and static
// tables, window sharing via wCache, native UDF registration, and
// adaptive main-memory indexing driven by runtime statistics.
//
// The execution model matches the paper: the timeSlidingWindow operator
// groups incoming tuples into window batches; each completed batch is
// evaluated as a relational query blending the batch with static tables;
// results are paced by the query's pulse.
package exastream

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Sink receives the result rows of one window evaluation of a registered
// query. Implementations must be safe for concurrent use.
type Sink func(queryID string, windowEnd int64, schema relation.Schema, rows []relation.Tuple)

// Stats aggregates engine-level counters.
type Stats struct {
	TuplesIn        int64
	BatchesBuilt    int64
	WindowsExecuted int64
	RowsOut         int64
	WCacheHits      int64
	WCacheMisses    int64
	AdaptiveIndexes int64
	LateTuples      int64
	QueryFailures   int64 // failed window executions (contained by the error hook)
	Suspensions     int64 // queries quarantined after repeated failures

	// Per-execution counters surfaced from engine.ExecStats, summed over
	// all window executions.
	RowsScanned  int64
	RowsProduced int64
	HashProbes   int64
	IndexLookups int64

	// Plan-cache lifecycle: builds (cold or invalidated), hits, and
	// re-adaptations after adaptive indexing built a new index.
	PlanBuilds    int64
	PlanCacheHits int64
	PlanReadapts  int64
}

// metrics is the engine's instrument set — the former `counters` struct
// of raw atomics folded into the telemetry registry. Instruments are
// resolved once at engine construction so every hot-path update is
// still a single atomic add; Stats() and registry snapshots read the
// same values.
type metrics struct {
	tuplesIn        *telemetry.Counter
	batchesBuilt    *telemetry.Counter
	windowsExecuted *telemetry.Counter
	rowsOut         *telemetry.Counter
	adaptiveIndexes *telemetry.Counter
	lateTuples      *telemetry.Counter
	queryFailures   *telemetry.Counter
	suspensions     *telemetry.Counter
	rowsScanned     *telemetry.Counter
	rowsProduced    *telemetry.Counter
	hashProbes      *telemetry.Counter
	indexLookups    *telemetry.Counter
	planBuilds      *telemetry.Counter
	planCacheHits   *telemetry.Counter
	planReadapts    *telemetry.Counter

	wcacheHits   *telemetry.Counter
	wcacheMisses *telemetry.Counter
	wcacheShed   *telemetry.Counter // entries evicted by the byte budget
	wcacheLen    *telemetry.Gauge   // cached window batches currently retained
	wcacheBytes  *telemetry.Gauge   // byte estimate of retained batches
	watermarkLag *telemetry.Gauge   // ms between newest executed window and oldest retained

	// Resource-governance instruments (see governance.go).
	govShedBatches *telemetry.Counter // window batches dropped by budget enforcement
	govShedBytes   *telemetry.Counter // bytes reclaimed by shedding
	govWidenEvents *telemetry.Counter // slide-widening escalations
	govSuspended   *telemetry.Counter // queries quarantined for overbudget
	govOverBudget  *telemetry.Counter // residual overages shedding could not reclaim

	windowExecNS *telemetry.Histogram // wall time of one window execution

	// Per-operator row counters folded from engine.ExecStats after each
	// window execution.
	opCalls [engine.NumOpKinds]*telemetry.Counter
	opRows  [engine.NumOpKinds]*telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{
		tuplesIn:        reg.Counter("exastream.tuples_in"),
		batchesBuilt:    reg.Counter("exastream.batches_built"),
		windowsExecuted: reg.Counter("exastream.windows_executed"),
		rowsOut:         reg.Counter("exastream.rows_out"),
		adaptiveIndexes: reg.Counter("exastream.adaptive_indexes"),
		lateTuples:      reg.Counter("exastream.late_tuples"),
		queryFailures:   reg.Counter("exastream.query_failures"),
		suspensions:     reg.Counter("exastream.suspensions"),
		rowsScanned:     reg.Counter("exastream.rows_scanned"),
		rowsProduced:    reg.Counter("exastream.rows_produced"),
		hashProbes:      reg.Counter("exastream.hash_probes"),
		indexLookups:    reg.Counter("exastream.index_lookups"),
		planBuilds:      reg.Counter("exastream.plan.builds"),
		planCacheHits:   reg.Counter("exastream.plan.cache_hits"),
		planReadapts:    reg.Counter("exastream.plan.readapts"),
		wcacheHits:      reg.Counter("exastream.wcache.hits"),
		wcacheMisses:    reg.Counter("exastream.wcache.misses"),
		wcacheShed:      reg.Counter("exastream.wcache.shed"),
		wcacheLen:       reg.Gauge("exastream.wcache.len"),
		wcacheBytes:     reg.Gauge("exastream.wcache.bytes"),
		watermarkLag:    reg.Gauge("exastream.wcache.watermark_lag_ms"),
		govShedBatches:  reg.Counter("governance.shed_batches"),
		govShedBytes:    reg.Counter("governance.shed_bytes"),
		govWidenEvents:  reg.Counter("governance.widen_events"),
		govSuspended:    reg.Counter("governance.suspended"),
		govOverBudget:   reg.Counter("governance.overbudget"),
		windowExecNS:    reg.Histogram("exastream.window.exec_ns", telemetry.LatencyBuckets),
	}
	for k := engine.OpKind(0); k < engine.NumOpKinds; k++ {
		m.opCalls[k] = reg.Counter("engine.op." + k.String() + ".calls")
		m.opRows[k] = reg.Counter("engine.op." + k.String() + ".rows_out")
	}
	return m
}

// VecMode selects the window execution path. The zero value is the
// vectorized columnar path (the default); VecOff forces the
// tuple-at-a-time row path, which is also the automatic fallback for
// any plan subtree without a columnar kernel.
type VecMode int

const (
	// VecOn executes windows with columnar batch kernels where the plan
	// supports them.
	VecOn VecMode = iota
	// VecOff forces tuple-at-a-time execution everywhere (the
	// differential oracle and ablation baseline).
	VecOff
)

// Options configures an Engine.
type Options struct {
	// AdaptiveIndexing enables runtime index building on static tables
	// (the paper's adaptive indexing optimisation). Disabled engines keep
	// scanning, which the ablation benchmark measures.
	AdaptiveIndexing bool
	// AdaptiveThreshold is the number of un-indexed lookups on the same
	// (table, columns) after which an index is built. Default 3.
	AdaptiveThreshold int
	// ShareWindows routes window materialisation through wCache so
	// queries with the same (stream, window) share one pass. Default on
	// via NewEngine.
	ShareWindows bool
	// OnQueryError, when set, receives per-query window-execution
	// failures instead of them aborting Ingest/Flush: one poison query
	// no longer fails every other query sharing the tick. The cluster
	// runtime installs a hook that records errors in the node's ring.
	OnQueryError func(queryID string, err error)
	// QuarantineAfter suspends a query once it fails this many
	// consecutive window executions (poison-query isolation); suspended
	// queries skip execution until Resume. 0 disables quarantine.
	// Quarantine (like OnQueryError) contains execution errors rather
	// than returning them from Ingest/Flush.
	QuarantineAfter int
	// Parallelism bounds the worker pool that executes continuous
	// queries made ready by one ingest/flush tick. 0 (the default) uses
	// GOMAXPROCS; 1 or less forces sequential execution. Windows of a
	// single query always run sequentially in window-end order,
	// whatever the pool size.
	Parallelism int
	// DisablePlanCache rebuilds every query's physical plan on every
	// window execution (the pre-compile-once behaviour); the ablation
	// benchmarks measure the difference.
	DisablePlanCache bool
	// InterpretExprs evaluates expressions with the engine's reference
	// interpreter instead of compiled closures. Together with
	// DisablePlanCache this reproduces the pre-compile-once execution
	// pipeline end to end; it exists for ablation and debugging.
	InterpretExprs bool
	// Vectorized selects columnar batch-at-a-time window execution (the
	// zero value, i.e. on by default) or the tuple-at-a-time row path
	// (VecOff). Operators without a columnar kernel fall back to the row
	// path automatically either way.
	Vectorized VecMode
	// Telemetry, when set, is the metrics registry the engine records
	// into; nil gives the engine a private registry (counters then cost
	// the same either way). The cluster runtime passes one registry per
	// node so counters survive engine rebuilds after a crash.
	Telemetry *telemetry.Registry
	// Tracer, when set, receives per-window execution spans on each
	// query's lifecycle trace (created by the layer that registered the
	// query). Nil disables span recording at zero cost.
	Tracer *telemetry.Tracer
	// MemBudget is the default per-query window-state byte budget; a
	// query whose staged and owned window state exceeds it degrades per
	// Degrade. 0 disables enforcement (per-query budgets can still be
	// set with SetQueryBudget).
	MemBudget int64
	// WCacheBudget caps the shared window cache's byte estimate; the
	// oldest cached windows are evicted (and re-materialised on demand)
	// to stay under. 0 leaves the cache bounded only by watermarks.
	WCacheBudget int64
	// Degrade selects the over-budget reaction: shed oldest window state
	// (default), widen the effective slide, or suspend the query.
	Degrade DegradePolicy
	// Pressure, when set, reports externally-attributed bytes for a
	// query (fault injection, cgroup observers); its value is added to
	// the query's measured usage before budget comparison.
	Pressure func(queryID string) int64
	// Recorder, when set, is the node's flight recorder: window
	// executions, degradations, and quarantines leave events in its
	// ring. Nil (the default) disables recording at zero cost.
	Recorder *telemetry.Recorder
	// Analyze collects optimizer statistics: static tables get an
	// ANALYZE pass (row counts, per-column NDV, equi-depth histograms)
	// and every window execution feeds observed cardinalities and
	// stream samples back into the store. Plans still execute
	// as-written; EXPLAIN ANALYZE gains an estimated-vs-observed
	// column.
	Analyze bool
	// Optimize enables the statistics-driven cost-based planner:
	// cached plans are rewritten after adaptation (index-scan vs
	// full-scan choice, lookup-join reordering by estimated matches
	// per probe). Implies Analyze.
	Optimize bool
}

// Engine is one ExaStream instance (one per worker node in the cluster).
type Engine struct {
	catalog *relation.Catalog
	funcs   *engine.FuncRegistry

	mu        sync.Mutex
	streams   map[string]stream.Schema
	windows   map[windowKey]*sharedWindow
	queries   map[string]*continuousQuery
	wcache    *stream.WCache
	archives  map[string][]*relation.Table // stream -> archive tables
	federated map[string]FetchFunc
	opts      Options
	probes    map[string]int // adaptive indexing: (table|cols) -> scans

	// indexEpoch (atomic) counts adaptive indexes built; cached plans
	// compare it to theirs and re-adapt when it moved.
	indexEpoch int64
	// govActive (atomic) is 1 once any query has a positive budget, so
	// the per-tuple enforcement hook is a single load when governance is
	// off.
	govActive int32
	reg       *telemetry.Registry
	met       *metrics

	// stats is the optimizer statistics store (nil unless Analyze or
	// Optimize is set): ANALYZE-pass table stats, windowed stream
	// samples, and observed-cardinality feedback from executions.
	stats *engine.StatsStore
}

// windowKey identifies one windowing pass. owner is "" for the normal
// shared pass; a restored query's windows are keyed by its id so replay
// can advance them without touching the other queries' shared state.
type windowKey struct {
	stream string
	spec   stream.WindowSpec
	owner  string
}

// sharedWindow is one windowing pass over a stream, shared by all
// subscribed queries (the wCache idea).
type sharedWindow struct {
	op   *stream.TimeSlidingWindow
	subs []*querySub
}

// querySub subscribes one stream reference of one query to a shared
// window.
type querySub struct {
	q      *continuousQuery
	refIdx int
}

// continuousQuery is one registered SQL(+) statement.
type continuousQuery struct {
	id    string
	stmt  *sql.SelectStmt
	refs  []*sql.TableRef // stream references, in discovery order
	specs []stream.WindowSpec
	pulse *stream.Pulse
	sink  Sink

	// private marks a checkpoint-restored query: its windows are owned
	// (keyed by query id, not shared) and appliedSeq filters re-delivered
	// tuples so replay is idempotent.
	private    bool
	appliedSeq map[string]int64 // stream -> highest ingest seq applied (guarded by e.mu)

	mu          sync.Mutex
	pending     map[int64]map[int]stream.Batch // window end -> refIdx -> batch
	stagedBytes int64                          // byte estimate of pending (governance)
	failures    int                            // consecutive failed executions
	suspended   bool                           // quarantined: skips execution until Resume

	// budget is the query's window-state byte budget (0 = unenforced);
	// stride > 1 is DegradeWiden's slide widening: only every stride-th
	// window executes. Both are atomics so stage/enforcement read them
	// without extra locking, and both survive checkpoint/restore.
	budget atomic.Int64
	stride atomic.Int64
	// govOver latches the over-budget state so the typed degradation
	// error reaches the ring once per episode (on the under→over
	// transition), not once per enforcement tick.
	govOver atomic.Bool

	// execMu serializes window executions of this query and guards plan;
	// distinct queries execute concurrently on the fleet pool.
	execMu sync.Mutex
	plan   *cachedPlan
	// cum accumulates per-operator stats across this query's window
	// executions (guarded by execMu) — the observed cardinalities
	// EXPLAIN ANALYZE renders against the planner's estimates; the
	// per-execution snapshots also feed StatsStore.Feedback.
	// windows/rowsOutTotal/lastEnd summarize successful executions for
	// the lag view.
	cum          engine.ExecStats
	windows      int64
	rowsOutTotal int64
	lastEnd      int64
	// execCtx is reused across this query's window executions (guarded
	// by execMu): per-operator stats are reset in place instead of
	// re-allocating the context every window.
	execCtx *engine.ExecContext

	// trace is the query's telemetry trace (nil when no tracer is
	// configured); window executions append spans to it.
	trace *telemetry.Trace
}

// cachedPlan is a continuous query's compiled physical plan, built once
// and re-executed every tick by rebinding the window sources. It is
// invalidated (rebuilt) when the catalog's table set changes and
// re-adapted when adaptive indexing builds a new index.
type cachedPlan struct {
	built   engine.Plan                // optimized plan, pre-adaptation
	adapted engine.Plan                // adaptPlan output actually executed
	sources []*engine.WindowSourcePlan // one per stream ref, rebound per tick
	probes  []probe
	epoch   int64  // e.indexEpoch the plan was adapted at
	gen     uint64 // catalog generation the plan was built at
}

// NewEngine builds an engine over a static catalog.
func NewEngine(cat *relation.Catalog, opts Options) *Engine {
	if opts.AdaptiveThreshold <= 0 {
		opts.AdaptiveThreshold = 3
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	met := newMetrics(reg)
	wc := stream.NewWCache()
	wc.UseCounters(met.wcacheHits, met.wcacheMisses)
	wc.UseShedCounter(met.wcacheShed)
	if opts.WCacheBudget > 0 {
		wc.SetBudget(opts.WCacheBudget)
	}
	if opts.Optimize {
		opts.Analyze = true
	}
	var stats *engine.StatsStore
	if opts.Analyze {
		stats = engine.NewStatsStore(cat)
		stats.Analyze()
	}
	return &Engine{
		catalog:   cat,
		funcs:     engine.NewFuncRegistry(),
		streams:   make(map[string]stream.Schema),
		windows:   make(map[windowKey]*sharedWindow),
		queries:   make(map[string]*continuousQuery),
		wcache:    wc,
		archives:  make(map[string][]*relation.Table),
		federated: make(map[string]FetchFunc),
		opts:      opts,
		probes:    make(map[string]int),
		reg:       reg,
		met:       met,
		stats:     stats,
	}
}

// Telemetry returns the engine's metrics registry.
func (e *Engine) Telemetry() *telemetry.Registry { return e.reg }

// Catalog returns the static catalog.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }

// RegisterUDF installs a scalar UDF usable from SQL(+) queries.
func (e *Engine) RegisterUDF(name string, f engine.ScalarFunc) {
	e.funcs.Register(name, f)
}

// DeclareStream registers a stream schema.
func (e *Engine) DeclareStream(s stream.Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := e.streams[key]; ok {
		return fmt.Errorf("exastream: stream %q already declared", s.Name)
	}
	e.streams[key] = s
	return nil
}

// StreamSchema returns a declared stream's schema.
func (e *Engine) StreamSchema(name string) (stream.Schema, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[strings.ToLower(name)]
	if !ok {
		return stream.Schema{}, fmt.Errorf("exastream: unknown stream %q", name)
	}
	return s, nil
}

// Register adds a continuous query. The statement's stream references
// must carry window specs with a common slide; the optional pulse paces
// output. Register returns an error for unknown streams or invalid
// windows.
func (e *Engine) Register(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink Sink) error {
	if pulse != nil {
		if err := pulse.Validate(); err != nil {
			return err
		}
	}
	refs := collectStreamRefs(stmt)
	if len(refs) == 0 {
		return fmt.Errorf("exastream: query %s references no stream; run it with engine.Run instead", id)
	}
	q := &continuousQuery{
		id: id, stmt: stmt, refs: refs, pulse: pulse, sink: sink,
		pending: make(map[int64]map[int]stream.Batch),
	}
	if e.opts.Tracer != nil {
		// Attach to an existing trace (started by the coordinator at
		// translation time) or open a fresh one for this query id.
		if q.trace = e.opts.Tracer.Trace(id); q.trace == nil {
			q.trace = e.opts.Tracer.Start(id)
		}
	}
	if err := e.registerLocked(q); err != nil {
		return err
	}
	// Build the physical plan eagerly so the very first window already
	// runs on the cached, compiled path. A query that fails to build
	// (missing table, bad expression) stays registered: the error
	// resurfaces on each execution attempt and flows through the usual
	// containment/quarantine machinery.
	if !e.opts.DisablePlanCache {
		if cp, err := e.buildPlan(q); err == nil {
			e.met.planBuilds.Inc()
			q.execMu.Lock()
			if q.plan == nil {
				q.plan = cp
			}
			q.execMu.Unlock()
		}
	}
	return nil
}

func (e *Engine) registerLocked(q *continuousQuery) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[q.id]; dup {
		return fmt.Errorf("exastream: query %q already registered", q.id)
	}
	var slide int64 = -1
	for i, ref := range q.refs {
		if _, ok := e.streams[strings.ToLower(ref.Table)]; !ok {
			return fmt.Errorf("exastream: query %s: unknown stream %q", q.id, ref.Table)
		}
		if ref.Window == nil {
			return fmt.Errorf("exastream: query %s: stream %q lacks a window", q.id, ref.Table)
		}
		spec := stream.WindowSpec{RangeMS: ref.Window.RangeMS, SlideMS: ref.Window.SlideMS}
		if err := spec.Validate(); err != nil {
			return err
		}
		if slide == -1 {
			slide = spec.SlideMS
		} else if slide != spec.SlideMS {
			return fmt.Errorf("exastream: query %s: stream windows must share a slide", q.id)
		}
		q.specs = append(q.specs, spec)
		e.subscribeLocked(q, i, ref.Table, spec)
	}
	e.queries[q.id] = q
	e.wcache.Register(q.id)
	if e.opts.MemBudget > 0 && q.budget.Load() == 0 {
		q.budget.Store(e.opts.MemBudget)
		atomic.StoreInt32(&e.govActive, 1)
	}
	return nil
}

func (e *Engine) subscribeLocked(q *continuousQuery, refIdx int, streamName string, spec stream.WindowSpec) {
	key := windowKey{stream: strings.ToLower(streamName), spec: spec}
	if q.private {
		key.owner = q.id
	}
	sw, ok := e.windows[key]
	if !ok {
		op, err := stream.NewTimeSlidingWindow(spec)
		if err != nil {
			panic(err) // spec validated above
		}
		sw = &sharedWindow{op: op}
		e.windows[key] = sw
	}
	sw.subs = append(sw.subs, &querySub{q: q, refIdx: refIdx})
}

// Unregister removes a query.
func (e *Engine) Unregister(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.queries[id]; !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	delete(e.queries, id)
	e.wcache.Unregister(id)
	for wk, sw := range e.windows {
		if wk.owner == id {
			delete(e.windows, wk)
			continue
		}
		kept := sw.subs[:0]
		for _, s := range sw.subs {
			if s.q.id != id {
				kept = append(kept, s)
			}
		}
		sw.subs = kept
	}
	return nil
}

// QueryIDs lists registered queries, sorted.
func (e *Engine) QueryIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ingest pushes one tuple into a stream, advancing every shared window
// over it and executing any queries whose windows completed.
func (e *Engine) Ingest(streamName string, el stream.Timestamped) error {
	return e.IngestSeq(streamName, el, 0)
}

// IngestSeq is Ingest with a per-stream ingest sequence number (1-based;
// 0 means unsequenced). Sequence numbers only matter to restored
// (private) queries: a tuple whose seq is at or below a query's applied
// cursor for the stream has already advanced that query's windows
// before the restore, so it is skipped — this is what makes the
// supervisor's replay idempotent against live re-deliveries.
func (e *Engine) IngestSeq(streamName string, el stream.Timestamped, seq int64) error {
	e.mu.Lock()
	key := strings.ToLower(streamName)
	if _, ok := e.streams[key]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("exastream: unknown stream %q", streamName)
	}
	e.met.tuplesIn.Inc()
	if err := e.archiveLocked(key, el); err != nil {
		e.mu.Unlock()
		return err
	}
	var ownerSkip map[string]bool
	var fires []delivery
	for wk, sw := range e.windows {
		if wk.stream != key {
			continue
		}
		if wk.owner != "" {
			if ownerSkip == nil {
				ownerSkip = make(map[string]bool)
			}
			skip, decided := ownerSkip[wk.owner]
			if !decided {
				if q := e.queries[wk.owner]; q != nil && seq != 0 && q.appliedSeq != nil {
					if seq <= q.appliedSeq[key] {
						skip = true
					} else {
						q.appliedSeq[key] = seq
					}
				}
				ownerSkip[wk.owner] = skip
			}
			if skip {
				continue
			}
		}
		before := sw.op.Late
		batches := sw.op.Push(el)
		e.met.lateTuples.Add(sw.op.Late - before)
		for _, b := range batches {
			e.met.batchesBuilt.Inc()
			if e.opts.ShareWindows && wk.owner == "" {
				if e.opts.Vectorized == VecOn {
					// Materialise the shared transpose before the cache
					// takes its byte estimate, so governance accounts the
					// columnar copy the executions are about to create.
					b.Columns()
				}
				e.wcache.Put(streamName, wk.spec, b)
			}
			for _, sub := range sw.subs {
				fires = append(fires, delivery{sub, b})
			}
		}
	}
	e.mu.Unlock()

	err := e.dispatch(fires)
	e.enforceBudgets()
	return err
}

// Flush completes all open windows (end of replay) and executes the
// remaining batches.
func (e *Engine) Flush() error {
	e.mu.Lock()
	var fires []delivery
	for wk, sw := range e.windows {
		for _, b := range sw.op.Flush() {
			e.met.batchesBuilt.Inc()
			if e.opts.ShareWindows && wk.owner == "" {
				if e.opts.Vectorized == VecOn {
					b.Columns()
				}
				e.wcache.Put(wk.stream, wk.spec, b)
			}
			for _, sub := range sw.subs {
				fires = append(fires, delivery{sub, b})
			}
		}
	}
	e.mu.Unlock()
	return e.dispatch(fires)
}

// delivery is one window batch headed for one stream reference of one
// query.
type delivery struct {
	sub   *querySub
	batch stream.Batch
}

// execItem is one ready window execution: every stream reference of the
// query has its batch for this window end.
type execItem struct {
	q       *continuousQuery
	end     int64
	batches []stream.Batch // indexed by stream-reference position
}

// dispatch stages the tick's deliveries and executes every query that
// became ready, in parallel across queries when the pool allows.
func (e *Engine) dispatch(fires []delivery) error {
	var ready []execItem
	for _, f := range fires {
		if it, ok := e.stage(f.sub.q, f.sub.refIdx, f.batch); ok {
			ready = append(ready, it)
		}
	}
	return e.runReady(ready)
}

// stage delivers a batch to one stream reference of a query and reports
// the execution item once batches for every reference at that window
// end are in.
func (e *Engine) stage(q *continuousQuery, refIdx int, b stream.Batch) (execItem, bool) {
	// Pulse pacing comes first: a batch for a non-pulse tick must never
	// enter the pending map, or multi-ref queries leak partial pending
	// entries for window ends that pacing would discard anyway.
	if q.pulse != nil {
		if (b.End-q.pulse.StartMS)%q.pulse.FrequencyMS != 0 || b.End < q.pulse.StartMS {
			return execItem{}, false
		}
	}
	// DegradeWiden: a widened query executes only every stride-th window.
	// The skip keys on WindowID, which agrees across the query's stream
	// references (they share a slide), so multi-ref staging stays
	// consistent.
	if s := q.stride.Load(); s > 1 && b.WindowID%s != 0 {
		return execItem{}, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.suspended {
		return execItem{}, false
	}
	if len(q.refs) == 1 {
		// A single-ref query is ready the moment its batch arrives:
		// nothing enters the pending map (checkpoints and shedding only
		// ever see genuinely partial windows) and no byte estimate is
		// taken for a batch that is consumed on this very tick.
		return execItem{q: q, end: b.End, batches: []stream.Batch{b}}, true
	}
	m, ok := q.pending[b.End]
	if !ok {
		m = make(map[int]stream.Batch)
		q.pending[b.End] = m
	}
	if old, dup := m[refIdx]; dup {
		q.stagedBytes -= old.Bytes()
	}
	m[refIdx] = b
	q.stagedBytes += b.Bytes()
	if len(m) != len(q.refs) {
		return execItem{}, false
	}
	delete(q.pending, b.End)
	bs := make([]stream.Batch, len(q.refs))
	for ref, sb := range m {
		q.stagedBytes -= sb.Bytes()
		bs[ref] = sb
	}
	return execItem{q: q, end: b.End, batches: bs}, true
}

// parallelism resolves Options.Parallelism: 0 means GOMAXPROCS,
// anything below 1 means sequential.
func (e *Engine) parallelism() int {
	p := e.opts.Parallelism
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// runReady executes the tick's ready windows. Items are grouped by
// query — one query's windows always run sequentially in window-end
// order, so sink calls stay ordered per query — and distinct queries
// fan out over a bounded worker pool.
func (e *Engine) runReady(items []execItem) error {
	if len(items) == 0 {
		return nil
	}
	var order []*continuousQuery
	groups := make(map[*continuousQuery][]execItem)
	for _, it := range items {
		if _, ok := groups[it.q]; !ok {
			order = append(order, it.q)
		}
		groups[it.q] = append(groups[it.q], it)
	}
	for _, q := range order {
		g := groups[q]
		sort.Slice(g, func(i, j int) bool { return g[i].end < g[j].end })
	}
	workers := e.parallelism()
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		for _, q := range order {
			for _, it := range groups[q] {
				if err := e.executeItem(it); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Fork-join pool: each task is one query's ordered run of windows.
	// Panics (fault injection, poison UDFs) are captured per task and
	// re-raised on the calling goroutine after the join, so the cluster
	// supervisor — whose recover lives on the worker goroutine calling
	// Ingest/Flush — still observes them.
	errs := make([]error, len(order))
	panics := make([]any, len(order))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range tasks {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[gi] = r
						}
					}()
					for _, it := range groups[order[gi]] {
						if err := e.executeItem(it); err != nil {
							errs[gi] = err
							return
						}
					}
				}()
			}
		}()
	}
	for gi := range order {
		tasks <- gi
	}
	close(tasks)
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildPlan constructs, optimizes and adapts a query's physical plan
// with every stream reference resolved to a rebindable window source.
func (e *Engine) buildPlan(q *continuousQuery) (*cachedPlan, error) {
	sources := make([]*engine.WindowSourcePlan, len(q.refs))
	base := engine.CatalogResolver(e.catalog)
	resolver := func(tr *sql.TableRef) (engine.Plan, error) {
		if !tr.IsStream {
			return base(tr)
		}
		for i, ref := range q.refs {
			if ref == tr {
				if sources[i] == nil {
					ss, err := e.StreamSchema(tr.Table)
					if err != nil {
						return nil, err
					}
					sources[i] = engine.NewWindowSourcePlan(tr.Name(), ss.Tuple.Qualify(tr.Name()))
				}
				return sources[i], nil
			}
		}
		return nil, fmt.Errorf("exastream: unresolved stream reference %q", tr.Table)
	}
	built, err := engine.Build(q.stmt, resolver)
	if err != nil {
		return nil, err
	}
	adapted, probes := e.finishPlan(built)
	return &cachedPlan{
		built: built, adapted: adapted, sources: sources, probes: probes,
		epoch: atomic.LoadInt64(&e.indexEpoch), gen: e.catalog.Generation(),
	}, nil
}

// finishPlan runs the physical rewrites that follow Build: adaptive
// join adaptation always, then — when the cost-based planner is on —
// the statistics-driven rewrite (index-scan choice, lookup-join
// reordering). Cost-based index scans are lookups too, so their
// patterns are registered with the adaptive indexer and a hot pattern
// still earns a real index.
func (e *Engine) finishPlan(built engine.Plan) (engine.Plan, []probe) {
	adapted, probes := e.adaptPlan(built)
	if e.opts.Optimize && e.stats != nil {
		adapted = engine.OptimizeWithStats(adapted, e.stats)
		for _, is := range engine.CollectIndexScans(adapted) {
			probes = append(probes, probe{table: is.Table, cols: is.Cols})
		}
	}
	return adapted, probes
}

// executeItem evaluates one ready window of one query on its cached
// plan, rebuilding or re-adapting the plan first when the cache is
// cold or stale.
func (e *Engine) executeItem(it execItem) error {
	q := it.q
	q.execMu.Lock()
	defer q.execMu.Unlock()
	start := time.Now()
	span := q.trace.StartSpan("window-exec") // nil-safe: no-op without a tracer
	span.SetAttr("window_end", it.end)
	cacheHit := false
	cp := q.plan
	epoch := atomic.LoadInt64(&e.indexEpoch)
	gen := e.catalog.Generation()
	switch {
	case cp == nil || e.opts.DisablePlanCache || cp.gen != gen:
		var err error
		cp, err = e.buildPlan(q)
		if err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			return e.containQueryError(q, fmt.Errorf("exastream: query %s: %w", q.id, err))
		}
		e.met.planBuilds.Inc()
		if e.opts.DisablePlanCache {
			q.plan = nil
		} else {
			q.plan = cp
		}
	case cp.epoch != epoch:
		// Adaptive indexing built an index since this plan was adapted:
		// re-run adaptation so eligible scans become index lookups.
		cp.adapted, cp.probes = e.finishPlan(cp.built)
		cp.epoch = epoch
		e.met.planReadapts.Inc()
	default:
		cacheHit = true
		e.met.planCacheHits.Inc()
	}
	rowsIn := 0
	vec := e.opts.Vectorized == VecOn
	for i, src := range cp.sources {
		if src != nil {
			src.Bind(it.batches[i].Rows)
			if vec {
				// The batch's transpose cell is shared across wCache and
				// every query's delivery, so N queries over one window pay
				// for one transposition.
				src.BindColumns(it.batches[i].Columns())
			}
			rowsIn += len(it.batches[i].Rows)
			// Windowed sample for the stats store: EWMA rows per window
			// plus per-column NDV of this batch.
			e.stats.ObserveSource(src.Name, src.Schema(), it.batches[i].Rows)
		}
	}
	ctx := q.execCtx
	if ctx == nil {
		ctx = &engine.ExecContext{}
		q.execCtx = ctx
	}
	*ctx = engine.ExecContext{Catalog: e.catalog, Funcs: e.funcs, Interpret: e.opts.InterpretExprs, Vectorized: vec}
	rows, err := engine.ExecutePlan(ctx, cp.adapted)
	e.met.rowsScanned.Add(ctx.Stats.RowsScanned)
	e.met.rowsProduced.Add(ctx.Stats.RowsProduced)
	e.met.hashProbes.Add(ctx.Stats.HashProbes)
	e.met.indexLookups.Add(ctx.Stats.IndexLookups)
	e.foldOpStats(&ctx.Stats)
	q.cum.Add(&ctx.Stats)
	e.stats.Feedback(&ctx.Stats)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return e.containQueryError(q, fmt.Errorf("exastream: query %s: %w", q.id, err))
	}
	q.mu.Lock()
	q.failures = 0
	q.mu.Unlock()
	e.noteProbes(cp.probes)
	q.windows++
	q.rowsOutTotal += int64(len(rows))
	q.lastEnd = it.end
	e.met.windowsExecuted.Inc()
	e.met.rowsOut.Add(int64(len(rows)))
	e.wcache.Advance(q.id, it.end)
	elapsed := time.Since(start)
	e.met.windowExecNS.ObserveDuration(elapsed)
	e.met.wcacheLen.Set(float64(e.wcache.Len()))
	e.met.wcacheBytes.Set(float64(e.wcache.Bytes()))
	if lag := it.end - e.wcache.MinMark(); lag >= 0 {
		e.met.watermarkLag.Set(float64(lag))
	}
	span.SetAttr("rows_in", rowsIn).
		SetAttr("rows_out", len(rows)).
		SetAttr("plan_cache_hit", cacheHit).
		SetAttr("wall_ns", elapsed.Nanoseconds())
	span.End()
	e.opts.Recorder.Record(telemetry.EvWindowExec, q.id, "", it.end, elapsed.Nanoseconds())
	if q.sink != nil {
		q.sink(q.id, it.end, cp.adapted.Schema(), rows)
	}
	return nil
}

// foldOpStats folds one execution's per-operator counters into the
// registry's engine.op.* metrics.
func (e *Engine) foldOpStats(s *engine.ExecStats) {
	for k := range s.Ops {
		if c := s.Ops[k].Calls; c != 0 {
			e.met.opCalls[k].Add(c)
			e.met.opRows[k].Add(s.Ops[k].RowsOut)
		}
	}
}

// containQueryError handles a failed window execution. With an error
// hook or quarantine configured, the failure is counted against the
// query (suspending it after QuarantineAfter consecutive failures),
// reported through the hook, and contained — Ingest/Flush proceed for
// the other queries. Otherwise the error propagates as before.
func (e *Engine) containQueryError(q *continuousQuery, err error) error {
	if e.opts.OnQueryError == nil && e.opts.QuarantineAfter <= 0 {
		return err
	}
	q.mu.Lock()
	q.failures++
	suspend := e.opts.QuarantineAfter > 0 && q.failures >= e.opts.QuarantineAfter && !q.suspended
	if suspend {
		q.suspended = true
	}
	q.mu.Unlock()
	e.met.queryFailures.Inc()
	if suspend {
		e.met.suspensions.Inc()
		e.opts.Recorder.Record(telemetry.EvQuarantine, q.id, "", 0, int64(e.opts.QuarantineAfter))
	}
	if e.opts.OnQueryError != nil {
		e.opts.OnQueryError(q.id, err)
	}
	return nil
}

// SuspendedQueries lists quarantined queries, sorted.
func (e *Engine) SuspendedQueries() []string {
	e.mu.Lock()
	qs := make([]*continuousQuery, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	var out []string
	for _, q := range qs {
		q.mu.Lock()
		if q.suspended {
			out = append(out, q.id)
		}
		q.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Resume lifts a query's quarantine, resets its failure count, and
// drops its cached plan — whatever poisoned the query may have been
// fixed by a catalog or UDF change, so the next window replans from
// scratch.
func (e *Engine) Resume(id string) error {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	q.mu.Lock()
	q.suspended = false
	q.failures = 0
	q.mu.Unlock()
	q.stride.Store(0)
	q.govOver.Store(false)
	q.execMu.Lock()
	q.plan = nil
	q.execMu.Unlock()
	return nil
}

// Stats returns a snapshot of engine counters (read from the same
// telemetry instruments the registry snapshot exposes).
func (e *Engine) Stats() Stats {
	m := e.met
	s := Stats{
		TuplesIn:        m.tuplesIn.Value(),
		BatchesBuilt:    m.batchesBuilt.Value(),
		WindowsExecuted: m.windowsExecuted.Value(),
		RowsOut:         m.rowsOut.Value(),
		AdaptiveIndexes: m.adaptiveIndexes.Value(),
		LateTuples:      m.lateTuples.Value(),
		QueryFailures:   m.queryFailures.Value(),
		Suspensions:     m.suspensions.Value(),
		RowsScanned:     m.rowsScanned.Value(),
		RowsProduced:    m.rowsProduced.Value(),
		HashProbes:      m.hashProbes.Value(),
		IndexLookups:    m.indexLookups.Value(),
		PlanBuilds:      m.planBuilds.Value(),
		PlanCacheHits:   m.planCacheHits.Value(),
		PlanReadapts:    m.planReadapts.Value(),
	}
	s.WCacheHits, s.WCacheMisses = e.wcache.Counts()
	return s
}

// Add accumulates another snapshot into s (used for cluster-wide
// engine totals).
func (s *Stats) Add(o Stats) {
	s.TuplesIn += o.TuplesIn
	s.BatchesBuilt += o.BatchesBuilt
	s.WindowsExecuted += o.WindowsExecuted
	s.RowsOut += o.RowsOut
	s.WCacheHits += o.WCacheHits
	s.WCacheMisses += o.WCacheMisses
	s.AdaptiveIndexes += o.AdaptiveIndexes
	s.LateTuples += o.LateTuples
	s.QueryFailures += o.QueryFailures
	s.Suspensions += o.Suspensions
	s.RowsScanned += o.RowsScanned
	s.RowsProduced += o.RowsProduced
	s.HashProbes += o.HashProbes
	s.IndexLookups += o.IndexLookups
	s.PlanBuilds += o.PlanBuilds
	s.PlanCacheHits += o.PlanCacheHits
	s.PlanReadapts += o.PlanReadapts
}

// collectStreamRefs walks the statement (all union branches, joins and
// subqueries) and returns pointers to every stream TableRef.
func collectStreamRefs(stmt *sql.SelectStmt) []*sql.TableRef {
	var out []*sql.TableRef
	var visitRef func(tr *sql.TableRef)
	var visitStmt func(s *sql.SelectStmt)
	visitRef = func(tr *sql.TableRef) {
		if tr.IsStream {
			out = append(out, tr)
		}
		if tr.Subquery != nil {
			visitStmt(tr.Subquery)
		}
		for i := range tr.Joins {
			visitRef(tr.Joins[i].Right)
		}
	}
	visitStmt = func(s *sql.SelectStmt) {
		for _, b := range s.Branches() {
			for _, tr := range b.From {
				visitRef(tr)
			}
		}
	}
	visitStmt(stmt)
	return out
}

package exastream

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/stream"
)

// Stream archiving (paper §2: ExaStream blends streaming attributes with
// "archived stream data (such as past sensor readings, temperature
// measurements, etc)"): an archived stream appends every ingested tuple
// to a static table in the engine's catalog, so continuous queries can
// join the live window against the stream's own history, and historical
// queries run over it like any other table.

// ArchiveStream starts archiving a declared stream into a new catalog
// table of the given name (created with the stream's schema). Returns an
// error if the stream is unknown or the table name is taken.
func (e *Engine) ArchiveStream(streamName, tableName string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(streamName)
	s, ok := e.streams[key]
	if !ok {
		return fmt.Errorf("exastream: unknown stream %q", streamName)
	}
	t, err := e.catalog.Create(tableName, s.Tuple)
	if err != nil {
		return err
	}
	e.archives[key] = append(e.archives[key], t)
	return nil
}

// archiveLocked appends a tuple to every archive of the stream. Called
// with e.mu held from Ingest.
func (e *Engine) archiveLocked(streamKey string, el stream.Timestamped) error {
	for _, t := range e.archives[streamKey] {
		row := make(relation.Tuple, len(el.Row))
		copy(row, el.Row)
		if err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

package exastream

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// failingUDF returns an error on every call, making any query that uses
// it fail at window execution time.
func failingUDF(args []relation.Value) (relation.Value, error) {
	return relation.Null, errors.New("boom: injected execution failure")
}

func TestQueryErrorHookContainsPoisonQuery(t *testing.T) {
	e := testRig(t, Options{})
	e.RegisterUDF("boom", failingUDF)
	var mu sync.Mutex
	hookErrs := map[string]int{}
	e.opts.OnQueryError = func(id string, err error) {
		mu.Lock()
		hookErrs[id]++
		mu.Unlock()
	}
	var good collector
	if err := e.Register("poison",
		sql.MustParse("SELECT boom(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("healthy",
		sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, good.sink); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 40, 100) // 4 windows
	if err := e.Flush(); err != nil {
		t.Fatalf("poison query aborted the shared tick: %v", err)
	}
	mu.Lock()
	poisonErrs := hookErrs["poison"]
	mu.Unlock()
	if poisonErrs == 0 {
		t.Error("hook saw no errors from the poison query")
	}
	if good.totalRows() == 0 {
		t.Error("healthy query produced no rows alongside the poison query")
	}
	if st := e.Stats(); st.QueryFailures != int64(poisonErrs) {
		t.Errorf("QueryFailures = %d, want %d", st.QueryFailures, poisonErrs)
	}
}

func TestQuarantineSuspendsAfterConsecutiveFailures(t *testing.T) {
	e := testRig(t, Options{QuarantineAfter: 2})
	e.RegisterUDF("boom", failingUDF)
	if err := e.Register("poison",
		sql.MustParse("SELECT boom(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, nil); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 60, 100) // 6 windows: fails twice, then suspended
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	sus := e.SuspendedQueries()
	if len(sus) != 1 || sus[0] != "poison" {
		t.Fatalf("SuspendedQueries = %v, want [poison]", sus)
	}
	st := e.Stats()
	if st.QueryFailures != 2 {
		t.Errorf("QueryFailures = %d, want exactly 2 (execution must stop after quarantine)", st.QueryFailures)
	}
	if st.Suspensions != 1 {
		t.Errorf("Suspensions = %d, want 1", st.Suspensions)
	}
	// Resume lifts the quarantine: the query executes (and fails) again.
	if err := e.Resume("poison"); err != nil {
		t.Fatal(err)
	}
	if got := e.SuspendedQueries(); len(got) != 0 {
		t.Fatalf("still suspended after Resume: %v", got)
	}
	feed2 := func(n int, fromMS int64) {
		for i := 0; i < n; i++ {
			ts := fromMS + int64(i)*100
			if err := e.Ingest("msmt", timestamped(ts, int64(i%10+1), float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed2(20, 10_000)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.QueryFailures <= 2 {
		t.Errorf("query did not execute after Resume: QueryFailures = %d", st.QueryFailures)
	}
}

func TestConsecutiveFailureCountResetsOnSuccess(t *testing.T) {
	e := testRig(t, Options{QuarantineAfter: 3})
	calls := 0
	// Fails on even calls only: never 3 consecutive failures.
	e.RegisterUDF("flaky", func(args []relation.Value) (relation.Value, error) {
		calls++
		if calls%2 == 0 {
			return relation.Null, errors.New("flaky failure")
		}
		return args[0], nil
	})
	if err := e.Register("flaky-q",
		sql.MustParse("SELECT flaky(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, nil); err != nil {
		t.Fatal(err)
	}
	// One tuple per window so the UDF alternation maps 1:1 to window
	// executions: fail, succeed, fail, … — never consecutive.
	feed(t, e, 10, 1000)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.SuspendedQueries(); len(got) != 0 {
		t.Errorf("alternating failures were treated as consecutive: suspended %v", got)
	}
	if st := e.Stats(); st.QueryFailures == 0 {
		t.Error("flaky query never failed; test is vacuous")
	}
}

func TestLegacyErrorPropagationWithoutHook(t *testing.T) {
	e := testRig(t, Options{})
	e.RegisterUDF("boom", failingUDF)
	if err := e.Register("poison",
		sql.MustParse("SELECT boom(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, nil); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < 20 && sawErr == nil; i++ {
		ts := int64(i) * 100
		sawErr = e.Ingest("msmt", timestamped(ts, 1, 1.0))
	}
	if sawErr == nil {
		sawErr = e.Flush()
	}
	if sawErr == nil {
		t.Error("without hook or quarantine, execution errors must propagate")
	}
	if err := e.Resume("missing"); err == nil {
		t.Error("Resume of unknown query accepted")
	}
}

func timestamped(ts, sid int64, val float64) stream.Timestamped {
	return stream.Timestamped{TS: ts, Row: relation.Tuple{relation.Int(sid), relation.Time(ts), relation.Float(val)}}
}

package exastream

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/sql"
)

const overlapQuery = "SELECT m.sid, m.val FROM STREAM msmt [RANGE 10000 SLIDE 1000] AS m"

// With a tiny budget and the default shed policy, an over-budget query
// loses its oldest open windows — and nothing else: no error escapes,
// no panic, the engine keeps executing.
func TestGovernanceShedPolicy(t *testing.T) {
	baseline := func() int {
		e := testRig(t, Options{})
		var c collector
		if err := e.Register("big", sql.MustParse(overlapQuery), nil, c.sink); err != nil {
			t.Fatal(err)
		}
		feed(t, e, 60, 100)
		return len(c.results)
	}()

	e := testRig(t, Options{})
	var c collector
	if err := e.Register("big", sql.MustParse(overlapQuery), nil, c.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQueryBudget("big", 2048); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 60, 100)

	snap := e.Telemetry().Snapshot()
	if snap.Counters["governance.shed_batches"] == 0 {
		t.Error("no batches shed despite a 2 KiB budget on a 10-window overlap")
	}
	if snap.Counters["governance.shed_bytes"] == 0 {
		t.Error("shed_bytes not counted")
	}
	if got := len(c.results); got == 0 || got >= baseline {
		t.Errorf("shed run delivered %d windows, want 0 < n < baseline %d", got, baseline)
	}
	if len(e.SuspendedQueries()) != 0 {
		t.Error("shed policy suspended the query")
	}
}

// DegradeWiden doubles the effective slide under pressure: the stride
// grows and the query executes a strict subset of its windows.
func TestGovernanceWidenPolicy(t *testing.T) {
	e := testRig(t, Options{Degrade: DegradeWiden})
	var c collector
	if err := e.Register("big", sql.MustParse(overlapQuery), nil, c.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQueryBudget("big", 2048); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 60, 100)
	_, stride, err := e.QueryBudget("big")
	if err != nil {
		t.Fatal(err)
	}
	if stride < 2 {
		t.Errorf("stride = %d, want widened >= 2", stride)
	}
	if e.Telemetry().Snapshot().Counters["governance.widen_events"] == 0 {
		t.Error("widen_events not counted")
	}
	// Resume resets the widening.
	if err := e.Resume("big"); err != nil {
		t.Fatal(err)
	}
	if _, stride, _ := e.QueryBudget("big"); stride != 1 {
		t.Errorf("stride after Resume = %d, want 1", stride)
	}
}

// DegradeSuspend quarantines the over-budget query (reported through
// OnQueryError as ErrQueryOverBudget) while an unbudgeted query on the
// same engine keeps its full output. Injected pressure stands in for
// real growth, as the chaos test does.
func TestGovernanceSuspendPolicyAndPressure(t *testing.T) {
	var mu sync.Mutex
	hookErrs := map[string]error{}
	e := testRig(t, Options{
		Degrade: DegradeSuspend,
		Pressure: func(id string) int64 {
			if id == "big" {
				return 1 << 30
			}
			return 0
		},
		OnQueryError: func(id string, err error) {
			mu.Lock()
			hookErrs[id] = err
			mu.Unlock()
		},
	})
	var big, small collector
	if err := e.Register("big", sql.MustParse(overlapQuery), nil, big.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("small", sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"), nil, small.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQueryBudget("big", 1<<20); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 60, 100)
	sus := e.SuspendedQueries()
	if len(sus) != 1 || sus[0] != "big" {
		t.Fatalf("SuspendedQueries = %v, want [big]", sus)
	}
	mu.Lock()
	err := hookErrs["big"]
	mu.Unlock()
	if !errors.Is(err, ErrQueryOverBudget) {
		t.Errorf("hook error = %v, want ErrQueryOverBudget", err)
	}
	if small.totalRows() == 0 {
		t.Error("unbudgeted query starved by co-tenant suspension")
	}
	snap := e.Telemetry().Snapshot()
	if snap.Counters["governance.suspended"] != 1 {
		t.Errorf("governance.suspended = %d, want 1", snap.Counters["governance.suspended"])
	}
}

// Shared window operators are never shed: a budgeted query that only
// co-tenants shared state cannot reclaim anything, so the overage is
// counted instead — and the co-tenant's output stays intact.
func TestGovernanceSharedWindowsNotShed(t *testing.T) {
	e := testRig(t, Options{Pressure: func(id string) int64 {
		if id == "greedy" {
			return 1 << 30
		}
		return 0
	}})
	var greedy, tenant collector
	// Same stream, same spec: one shared windowing pass for both.
	if err := e.Register("greedy", sql.MustParse(overlapQuery), nil, greedy.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("tenant", sql.MustParse(overlapQuery), nil, tenant.sink); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQueryBudget("greedy", 1); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 60, 100)
	snap := e.Telemetry().Snapshot()
	if snap.Counters["governance.overbudget"] == 0 {
		t.Error("residual overage not counted")
	}
	if snap.Counters["governance.shed_batches"] != 0 {
		t.Error("shared window state was shed")
	}
	if len(tenant.results) == 0 || len(tenant.results) != len(greedy.results) {
		t.Errorf("co-tenant delivered %d windows vs greedy %d; shared pass must serve both fully",
			len(tenant.results), len(greedy.results))
	}
}

// Options.MemBudget is the default budget for every registration.
func TestGovernanceDefaultBudget(t *testing.T) {
	e := testRig(t, Options{MemBudget: 4096})
	if err := e.Register("q", sql.MustParse(overlapQuery), nil, nil); err != nil {
		t.Fatal(err)
	}
	budget, stride, err := e.QueryBudget("q")
	if err != nil || budget != 4096 || stride != 1 {
		t.Errorf("QueryBudget = %d/%d (%v), want 4096/1", budget, stride, err)
	}
}

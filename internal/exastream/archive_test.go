package exastream

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

func TestArchiveStreamAccumulatesHistory(t *testing.T) {
	e := testRig(t, Options{})
	if err := e.ArchiveStream("msmt", "msmt_history"); err != nil {
		t.Fatal(err)
	}
	if err := e.ArchiveStream("ghost", "x"); err == nil {
		t.Error("unknown stream accepted")
	}
	if err := e.ArchiveStream("msmt", "msmt_history"); err == nil {
		t.Error("duplicate archive table accepted")
	}
	feed(t, e, 50, 100)
	hist, err := e.Catalog().Get("msmt_history")
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 50 {
		t.Fatalf("archived %d tuples, want 50", hist.Len())
	}
}

func TestContinuousQueryJoinsLiveWindowWithArchive(t *testing.T) {
	// The paper's blend: compare the live window against the stream's own
	// archived history (here: emit sensors whose live value exceeds any
	// archived value for the same sensor).
	e := testRig(t, Options{})
	if err := e.ArchiveStream("msmt", "history"); err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	q := sql.MustParse(`SELECT m.sid, m.val, h.val
		FROM STREAM msmt [RANGE 500 SLIDE 500] AS m, history AS h
		WHERE m.sid = h.sid AND m.val > h.val`)
	if err := e.Register("vs-history", q, nil, c.sink); err != nil {
		t.Fatal(err)
	}
	// Rising values: every tuple beats the archived earlier ones.
	for i := 0; i < 20; i++ {
		ts := int64(i) * 500
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(1), relation.Time(ts), relation.Float(float64(i)),
		}}
		if err := e.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.totalRows() == 0 {
		t.Fatal("live-vs-archive join produced nothing")
	}
}

func TestHistoricalQueryOverArchive(t *testing.T) {
	e := testRig(t, Options{})
	if err := e.ArchiveStream("msmt", "history"); err != nil {
		t.Fatal(err)
	}
	feed(t, e, 30, 100)
	// Plain (non-continuous) SQL over the archived table.
	ctx := engine.NewExecContext(e.Catalog())
	_, rows, err := engine.Run(ctx, "SELECT count(*), max(val) FROM history", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != relation.Int(30) {
		t.Fatalf("archived count = %v", rows[0][0])
	}
}

package exastream

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/recovery"
	"repro/internal/sql"
	"repro/internal/stream"
)

// ckptConsumer is the transient wCache consumer the export path
// registers so concurrent watermark advances cannot evict entries while
// the snapshot is being copied. The NUL prefix keeps it out of any
// query-id namespace.
const ckptConsumer = "\x00checkpoint"

// ExportState snapshots the engine's per-query stream state — window
// operators, staged partial windows, quarantine bookkeeping, applied
// sequence cursors — plus the shared wCache contents. The caller must
// quiesce the engine first (the cluster calls it on the node's worker
// goroutine between work items, which is a consistent cut by
// construction: Ingest is synchronous, so no window is mid-advance).
func (e *Engine) ExportState() *recovery.EngineState {
	type qsnap struct {
		q   *continuousQuery
		ops []*stream.TimeSlidingWindow
		seq map[string]int64
	}
	e.mu.Lock()
	e.wcache.Register(ckptConsumer)
	cached := e.wcache.SnapshotBatches()
	e.wcache.Unregister(ckptConsumer)
	snaps := make([]qsnap, 0, len(e.queries))
	for _, q := range e.queries {
		s := qsnap{q: q, ops: make([]*stream.TimeSlidingWindow, len(q.refs))}
		for i := range q.refs {
			key := windowKey{stream: strings.ToLower(q.refs[i].Table), spec: q.specs[i]}
			if q.private {
				key.owner = q.id
			}
			if sw := e.windows[key]; sw != nil {
				s.ops[i] = sw.op
			}
		}
		if q.appliedSeq != nil {
			s.seq = make(map[string]int64, len(q.appliedSeq))
			for k, v := range q.appliedSeq {
				s.seq[k] = v
			}
		}
		snaps = append(snaps, s)
	}
	e.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].q.id < snaps[j].q.id })

	st := &recovery.EngineState{WCache: cached}
	for _, s := range snaps {
		qs := recovery.QueryState{ID: s.q.id, AppliedSeq: s.seq}
		for _, op := range s.ops {
			if op == nil {
				qs.Windows = append(qs.Windows, stream.WindowState{})
				continue
			}
			qs.Windows = append(qs.Windows, op.Snapshot())
		}
		s.q.mu.Lock()
		ends := make([]int64, 0, len(s.q.pending))
		for end := range s.q.pending {
			ends = append(ends, end)
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		for _, end := range ends {
			pw := recovery.PendingWindow{End: end, Batches: make(map[int]stream.Batch, len(s.q.pending[end]))}
			for ref, b := range s.q.pending[end] {
				pw.Batches[ref] = deepCopyBatch(b)
			}
			qs.Pending = append(qs.Pending, pw)
		}
		qs.Failures = s.q.failures
		qs.Suspended = s.q.suspended
		s.q.mu.Unlock()
		qs.Budget = s.q.budget.Load()
		qs.Stride = s.q.stride.Load()
		st.Queries = append(st.Queries, qs)
	}
	return st
}

func deepCopyBatch(b stream.Batch) stream.Batch {
	cp := b
	cp.Rows = append(cp.Rows[:0:0], b.Rows...)
	return cp
}

// RestoreQuery registers a query whose stream state resumes from a
// checkpoint instead of starting empty. The restored query's window
// operators are private (owner-keyed, not shared through wCache) so the
// supervisor can replay logged tuples into them without disturbing the
// node's other queries; its applied-sequence cursors make that replay —
// and any overlap with live traffic — idempotent. A nil QueryState
// restores with fresh windows (checkpoint predates the query), cursored
// at the node's cut so replay still covers the gap.
func (e *Engine) RestoreQuery(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink Sink, st *recovery.QueryState, cursors map[string]int64) error {
	if pulse != nil {
		if err := pulse.Validate(); err != nil {
			return err
		}
	}
	refs := collectStreamRefs(stmt)
	if len(refs) == 0 {
		return fmt.Errorf("exastream: query %s references no stream; run it with engine.Run instead", id)
	}
	q := &continuousQuery{
		id: id, stmt: stmt, refs: refs, pulse: pulse, sink: sink,
		pending:    make(map[int64]map[int]stream.Batch),
		private:    true,
		appliedSeq: make(map[string]int64),
	}
	if st != nil && st.AppliedSeq != nil {
		for k, v := range st.AppliedSeq {
			q.appliedSeq[k] = v
		}
	} else {
		for k, v := range cursors {
			q.appliedSeq[k] = v
		}
	}
	if st != nil {
		for _, pw := range st.Pending {
			m := make(map[int]stream.Batch, len(pw.Batches))
			for ref, b := range pw.Batches {
				m[ref] = b
			}
			q.pending[pw.End] = m
		}
		q.failures = st.Failures
		q.suspended = st.Suspended
		q.budget.Store(st.Budget)
		q.stride.Store(st.Stride)
		for _, m := range q.pending {
			for _, b := range m {
				q.stagedBytes += b.Bytes()
			}
		}
	}
	if e.opts.Tracer != nil {
		if q.trace = e.opts.Tracer.Trace(id); q.trace == nil {
			q.trace = e.opts.Tracer.Start(id)
		}
	}
	if err := e.restoreLocked(q, st); err != nil {
		return err
	}
	if !e.opts.DisablePlanCache {
		if cp, err := e.buildPlan(q); err == nil {
			e.met.planBuilds.Inc()
			q.execMu.Lock()
			if q.plan == nil {
				q.plan = cp
			}
			q.execMu.Unlock()
		}
	}
	return nil
}

// restoreLocked mirrors registerLocked but seeds owner-keyed window
// operators from the snapshot.
func (e *Engine) restoreLocked(q *continuousQuery, st *recovery.QueryState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[q.id]; dup {
		return fmt.Errorf("exastream: query %q already registered", q.id)
	}
	var slide int64 = -1
	for i, ref := range q.refs {
		if _, ok := e.streams[strings.ToLower(ref.Table)]; !ok {
			return fmt.Errorf("exastream: query %s: unknown stream %q", q.id, ref.Table)
		}
		if ref.Window == nil {
			return fmt.Errorf("exastream: query %s: stream %q lacks a window", q.id, ref.Table)
		}
		spec := stream.WindowSpec{RangeMS: ref.Window.RangeMS, SlideMS: ref.Window.SlideMS}
		if err := spec.Validate(); err != nil {
			return err
		}
		if slide == -1 {
			slide = spec.SlideMS
		} else if slide != spec.SlideMS {
			return fmt.Errorf("exastream: query %s: stream windows must share a slide", q.id)
		}
		q.specs = append(q.specs, spec)
		key := windowKey{stream: strings.ToLower(ref.Table), spec: spec, owner: q.id}
		sw, ok := e.windows[key]
		if !ok {
			op, err := e.restoredOp(spec, st, i)
			if err != nil {
				return err
			}
			sw = &sharedWindow{op: op}
			e.windows[key] = sw
		}
		sw.subs = append(sw.subs, &querySub{q: q, refIdx: i})
	}
	e.queries[q.id] = q
	e.wcache.Register(q.id)
	if q.budget.Load() == 0 && e.opts.MemBudget > 0 {
		q.budget.Store(e.opts.MemBudget)
	}
	if q.budget.Load() > 0 {
		atomic.StoreInt32(&e.govActive, 1)
	}
	return nil
}

// restoredOp seeds one window operator from the snapshot's i-th stream
// reference; a missing or spec-mismatched snapshot (the statement
// changed since the checkpoint) gets a fresh operator.
func (e *Engine) restoredOp(spec stream.WindowSpec, st *recovery.QueryState, i int) (*stream.TimeSlidingWindow, error) {
	if st != nil && i < len(st.Windows) && st.Windows[i].Spec == spec {
		return stream.RestoreTimeSlidingWindow(st.Windows[i])
	}
	return stream.NewTimeSlidingWindow(spec)
}

// ReplayFor re-feeds one logged tuple to a restored query. Only the
// query's own (owner-keyed) windows advance; the applied-sequence
// cursor drops tuples the checkpointed state already saw.
func (e *Engine) ReplayFor(id, streamName string, el stream.Timestamped, seq int64) error {
	e.mu.Lock()
	key := strings.ToLower(streamName)
	if _, ok := e.streams[key]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("exastream: unknown stream %q", streamName)
	}
	q, ok := e.queries[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	if seq != 0 && q.appliedSeq != nil {
		if seq <= q.appliedSeq[key] {
			e.mu.Unlock()
			return nil
		}
		q.appliedSeq[key] = seq
	}
	var fires []delivery
	for wk, sw := range e.windows {
		if wk.stream != key || wk.owner != id {
			continue
		}
		before := sw.op.Late
		batches := sw.op.Push(el)
		e.met.lateTuples.Add(sw.op.Late - before)
		for _, b := range batches {
			e.met.batchesBuilt.Inc()
			for _, sub := range sw.subs {
				fires = append(fires, delivery{sub, b})
			}
		}
	}
	e.mu.Unlock()
	err := e.dispatch(fires)
	e.enforceBudgets()
	return err
}

// ImportWCache loads checkpointed wCache batches into the engine's
// cache (restart path: the rebuilt engine starts with the batches the
// dead one had materialised, so restored queries re-hit instead of
// re-materialising).
func (e *Engine) ImportWCache(ws []stream.CachedWindow) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wcache.RestoreBatches(ws)
}

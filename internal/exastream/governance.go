package exastream

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// ErrQueryOverBudget marks a query degraded or suspended because its
// window state exceeded its memory budget. It reaches the cluster error
// ring through the OnQueryError hook; errors.Is matches it.
var ErrQueryOverBudget = errors.New("exastream: query over memory budget")

// DegradePolicy selects what the engine does when a query's window
// state exceeds its byte budget. Whatever the policy, overload is a
// handled state: the worker never OOMs on a runaway query.
type DegradePolicy int

const (
	// DegradeShed (default) drops the query's oldest open window state
	// — staged partial windows first, then window-operator batches —
	// until the query fits its budget again. Shed windows are lost, not
	// emitted empty.
	DegradeShed DegradePolicy = iota
	// DegradeWiden doubles the query's effective slide (it executes
	// every 2nd, then 4th, ... window) and sheds like DegradeShed to
	// reclaim immediately. Fewer open windows means less state at the
	// cost of coarser results.
	DegradeWiden
	// DegradeSuspend quarantines the query outright: its staged and
	// owned window state is dropped and it skips execution until Resume,
	// exactly like a poison query.
	DegradeSuspend
)

// String renders the policy for flags and docs.
func (p DegradePolicy) String() string {
	switch p {
	case DegradeWiden:
		return "widen"
	case DegradeSuspend:
		return "suspend"
	default:
		return "shed"
	}
}

// maxStride caps DegradeWiden's slide widening.
const maxStride = 1024

// SetQueryBudget sets (or, with 0, clears) a registered query's byte
// budget, overriding Options.MemBudget for that query. The cluster
// layer calls it with the budget derived by starql.AnalyzeMemory.
func (e *Engine) SetQueryBudget(id string, budget int64) error {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("exastream: unknown query %q", id)
	}
	q.budget.Store(budget)
	if budget > 0 {
		atomic.StoreInt32(&e.govActive, 1)
	}
	return nil
}

// QueryBudget reports a query's current budget and widen stride (1 when
// never widened).
func (e *Engine) QueryBudget(id string) (budget, stride int64, err error) {
	e.mu.Lock()
	q, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("exastream: unknown query %q", id)
	}
	if stride = q.stride.Load(); stride < 1 {
		stride = 1
	}
	return q.budget.Load(), stride, nil
}

// govTarget is one query's enforcement work: the window operators only
// it reads (sheddable) and the byte estimate of shared operators it
// co-tenants (charged but never shed — shedding them would corrupt
// innocent queries).
type govTarget struct {
	q           *continuousQuery
	owned       []*stream.TimeSlidingWindow
	sharedBytes int64
}

// enforceBudgets applies the degradation policy to every query whose
// window state exceeds its budget. Called after each ingest/replay tick;
// a single atomic guards the fast path when governance is off.
func (e *Engine) enforceBudgets() {
	if atomic.LoadInt32(&e.govActive) == 0 {
		return
	}
	e.mu.Lock()
	targets := make([]govTarget, 0, len(e.queries))
	for _, q := range e.queries {
		if q.budget.Load() <= 0 {
			continue
		}
		t := govTarget{q: q}
		seen := make(map[*stream.TimeSlidingWindow]bool)
		for wk, sw := range e.windows {
			mine, owned := false, true
			for _, sub := range sw.subs {
				if sub.q == q {
					mine = true
				} else {
					owned = false
				}
			}
			if !mine || seen[sw.op] {
				continue
			}
			seen[sw.op] = true
			if owned || wk.owner == q.id {
				t.owned = append(t.owned, sw.op)
			} else {
				t.sharedBytes += sw.op.PendingBytes()
			}
		}
		targets = append(targets, t)
	}
	e.mu.Unlock()
	for _, t := range targets {
		e.enforceQuery(t)
	}
}

// enforceQuery measures one query against its budget and degrades it
// per the configured policy when it is over.
func (e *Engine) enforceQuery(t govTarget) {
	q := t.q
	budget := q.budget.Load()
	usage := t.sharedBytes
	for _, op := range t.owned {
		usage += op.PendingBytes()
	}
	q.mu.Lock()
	suspended := q.suspended
	usage += q.stagedBytes
	q.mu.Unlock()
	if e.opts.Pressure != nil {
		usage += e.opts.Pressure(q.id)
	}
	if suspended || usage <= budget {
		if !suspended {
			q.govOver.Store(false) // episode over: report the next overrun again
		}
		return
	}

	policy := e.opts.Degrade
	if policy == DegradeSuspend {
		e.suspendOverBudget(t, usage, budget)
		return
	}
	if policy == DegradeWiden {
		s := q.stride.Load()
		if s < 1 {
			s = 1
		}
		if s < maxStride {
			q.stride.Store(s * 2)
			e.met.govWidenEvents.Inc()
			e.opts.Recorder.Record(telemetry.EvDegradeWiden, q.id, "", 0, s*2)
		}
	}
	// Shed pass (both Shed and Widen): oldest staged partial windows
	// first — they are incomplete and cheapest to lose — then the oldest
	// batches of solely-owned window operators.
	var shedBytes int64
	for usage > budget {
		if freed, ok := e.shedOldestStaged(q); ok {
			usage -= freed
			shedBytes += freed
			continue
		}
		var best *stream.TimeSlidingWindow
		var bestBytes int64
		for _, op := range t.owned {
			if pb := op.PendingBytes(); pb > bestBytes {
				best, bestBytes = op, pb
			}
		}
		if best == nil {
			break
		}
		freed, ok := best.ShedOldestPending()
		if !ok {
			break
		}
		usage -= freed
		shedBytes += freed
		e.met.govShedBatches.Inc()
		e.met.govShedBytes.Add(freed)
	}
	if shedBytes > 0 {
		// One event per enforcement pass with the total reclaimed, not
		// one per batch — degradation episodes should not wash the
		// recorder's bounded ring of everything else.
		e.opts.Recorder.Record(telemetry.EvDegradeShed, q.id, "", 0, shedBytes)
	}
	if usage > budget {
		// Residual overage: what remains is shared window state or
		// injected pressure that shedding cannot reclaim without harming
		// co-tenant queries. Count it; the operator sees it on /metrics.
		e.met.govOverBudget.Inc()
	}
	// Report once per degradation episode: every enforcement pass while
	// the query stays over budget would otherwise flood the error ring
	// with one identical error per ingested tuple.
	if e.opts.OnQueryError != nil && q.govOver.CompareAndSwap(false, true) {
		e.opts.OnQueryError(q.id, fmt.Errorf("exastream: query %s degraded (%s policy, usage %d > budget %d): %w",
			q.id, policy, usage, budget, ErrQueryOverBudget))
	}
}

// suspendOverBudget quarantines an over-budget query and drops all its
// droppable state.
func (e *Engine) suspendOverBudget(t govTarget, usage, budget int64) {
	q := t.q
	q.mu.Lock()
	q.suspended = true
	q.pending = make(map[int64]map[int]stream.Batch)
	q.stagedBytes = 0
	q.mu.Unlock()
	for _, op := range t.owned {
		for {
			freed, ok := op.ShedOldestPending()
			if !ok {
				break
			}
			e.met.govShedBatches.Inc()
			e.met.govShedBytes.Add(freed)
		}
	}
	e.met.govSuspended.Inc()
	e.met.suspensions.Inc()
	e.opts.Recorder.Record(telemetry.EvDegradeSuspend, q.id, "", 0, usage-budget)
	q.govOver.Store(true)
	if e.opts.OnQueryError != nil {
		e.opts.OnQueryError(q.id, fmt.Errorf("exastream: query %s suspended (usage %d > budget %d): %w",
			q.id, usage, budget, ErrQueryOverBudget))
	}
}

// shedOldestStaged drops the query's oldest staged partial window and
// returns the bytes reclaimed.
func (e *Engine) shedOldestStaged(q *continuousQuery) (freed int64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	oldest := int64(1<<62 - 1)
	for end := range q.pending {
		if end < oldest {
			oldest = end
		}
	}
	m, found := q.pending[oldest]
	if !found {
		return 0, false
	}
	for _, b := range m {
		freed += b.Bytes()
	}
	delete(q.pending, oldest)
	q.stagedBytes -= freed
	e.met.govShedBatches.Inc()
	e.met.govShedBytes.Add(freed)
	return freed, true
}

package exastream

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Federated tables (paper §2: "Static relational tables may be stored in
// our system, or, they may be federated from external data-sources"):
// a federated table is backed by a fetch callback to the external
// source; its contents are pulled into the engine's catalog on refresh,
// so continuous queries join against the latest snapshot without the
// engine knowing the source's protocol.

// FetchFunc pulls the current rows of an external source.
type FetchFunc func() ([]relation.Tuple, error)

// RegisterFederated declares a federated table with the given schema and
// fetch callback, and performs the initial pull.
func (e *Engine) RegisterFederated(name string, schema relation.Schema, fetch FetchFunc) error {
	if fetch == nil {
		return fmt.Errorf("exastream: federated table %q needs a fetch callback", name)
	}
	if _, err := e.catalog.Create(name, schema); err != nil {
		return err
	}
	e.mu.Lock()
	e.federated[strings.ToLower(name)] = fetch
	e.mu.Unlock()
	return e.RefreshFederated(name)
}

// RefreshFederated re-pulls a federated table, replacing its contents
// atomically from the continuous queries' point of view (they read row
// snapshots).
func (e *Engine) RefreshFederated(name string) error {
	e.mu.Lock()
	fetch, ok := e.federated[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("exastream: %q is not a federated table", name)
	}
	rows, err := fetch()
	if err != nil {
		return fmt.Errorf("exastream: refreshing %q: %w", name, err)
	}
	t, err := e.catalog.Get(name)
	if err != nil {
		return err
	}
	t.Truncate()
	for _, row := range rows {
		if err := t.Insert(row.Clone()); err != nil {
			return fmt.Errorf("exastream: refreshing %q: %w", name, err)
		}
	}
	return nil
}

// Package cq implements conjunctive queries over ontology vocabularies:
// the internal query representation that STARQL WHERE clauses compile to,
// that the PerfectRef rewriter enriches, and that the mapping layer
// unfolds into SQL(+). It provides unification, homomorphism checking,
// containment, and UCQ minimisation.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Arg is one argument of an atom: a variable or an RDF constant.
type Arg struct {
	Var   string
	Const rdf.Term
	IsVar bool
}

// V returns a variable argument.
func V(name string) Arg { return Arg{Var: name, IsVar: true} }

// C returns a constant argument.
func C(t rdf.Term) Arg { return Arg{Const: t} }

// String renders the argument; variables print with a leading '?'.
func (a Arg) String() string {
	if a.IsVar {
		return "?" + a.Var
	}
	return a.Const.String()
}

// Equal reports structural equality.
func (a Arg) Equal(b Arg) bool {
	if a.IsVar != b.IsVar {
		return false
	}
	if a.IsVar {
		return a.Var == b.Var
	}
	return a.Const == b.Const
}

// Atom is one body atom: a class atom C(x) (one argument) or a
// property atom P(x, y) (two arguments).
type Atom struct {
	Pred string // class or property IRI
	Args []Arg
}

// ClassAtom builds C(x).
func ClassAtom(class string, x Arg) Atom { return Atom{Pred: class, Args: []Arg{x}} }

// PropAtom builds P(x, y).
func PropAtom(prop string, x, y Arg) Atom { return Atom{Pred: prop, Args: []Arg{x, y}} }

// IsClass reports whether the atom is unary.
func (a Atom) IsClass() bool { return len(a.Args) == 1 }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, x := range a.Args {
		parts[i] = x.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Filter is a comparison side-condition over a query variable (or, after
// reduce steps substitute a constant, over a ground value): the FILTER
// clause of STARQL WHERE blocks. Op is one of = != < <= > >=.
type Filter struct {
	Arg   Arg
	Op    string
	Value rdf.Term
}

// String renders the filter.
func (f Filter) String() string {
	return "FILTER(" + f.Arg.String() + " " + f.Op + " " + f.Value.String() + ")"
}

// CQ is a conjunctive query: answer variables, a body, and optional
// filter side-conditions.
type CQ struct {
	Head    []string // answer variable names
	Body    []Atom
	Filters []Filter
}

// New builds a CQ.
func New(head []string, body ...Atom) CQ { return CQ{Head: head, Body: body} }

// WithFilters returns a copy of the query with the filters attached.
func (q CQ) WithFilters(fs ...Filter) CQ {
	out := q.Clone()
	out.Filters = append(out.Filters, fs...)
	return out
}

// String renders the query as "q(x,y) :- A(x), P(x,y)".
func (q CQ) String() string {
	atoms := make([]string, len(q.Body))
	for i, a := range q.Body {
		atoms[i] = a.String()
	}
	s := "q(" + strings.Join(q.Head, ",") + ") :- " + strings.Join(atoms, ", ")
	for _, f := range q.Filters {
		s += ", " + f.String()
	}
	return s
}

// Clone deep-copies the query.
func (q CQ) Clone() CQ {
	head := make([]string, len(q.Head))
	copy(head, q.Head)
	body := make([]Atom, len(q.Body))
	for i, a := range q.Body {
		args := make([]Arg, len(a.Args))
		copy(args, a.Args)
		body[i] = Atom{Pred: a.Pred, Args: args}
	}
	filters := make([]Filter, len(q.Filters))
	copy(filters, q.Filters)
	return CQ{Head: head, Body: body, Filters: filters}
}

// Validate checks that head variables occur in the body and atoms are
// unary or binary.
func (q CQ) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: empty body")
	}
	vars := map[string]bool{}
	for _, a := range q.Body {
		if len(a.Args) != 1 && len(a.Args) != 2 {
			return fmt.Errorf("cq: atom %s has arity %d", a, len(a.Args))
		}
		if a.Pred == "" {
			return fmt.Errorf("cq: atom with empty predicate")
		}
		for _, x := range a.Args {
			if x.IsVar {
				vars[x.Var] = true
			}
		}
	}
	for _, h := range q.Head {
		if !vars[h] {
			return fmt.Errorf("cq: head variable %s not in body", h)
		}
	}
	for _, f := range q.Filters {
		switch f.Op {
		case "=", "!=", "<", "<=", ">", ">=":
		default:
			return fmt.Errorf("cq: invalid filter operator %q", f.Op)
		}
		if f.Arg.IsVar && !vars[f.Arg.Var] {
			return fmt.Errorf("cq: filter variable %s not in body", f.Arg.Var)
		}
	}
	return nil
}

// VarCounts returns how many times each variable occurs in the body.
func (q CQ) VarCounts() map[string]int {
	counts := map[string]int{}
	for _, a := range q.Body {
		for _, x := range a.Args {
			if x.IsVar {
				counts[x.Var]++
			}
		}
	}
	return counts
}

// IsHeadVar reports whether name is an answer variable.
func (q CQ) IsHeadVar(name string) bool {
	for _, h := range q.Head {
		if h == name {
			return true
		}
	}
	return false
}

// Unbound reports whether the argument at position pos of atom idx is
// "unbound" in the PerfectRef sense: an anonymous variable, i.e. a
// variable occurring exactly once in the body and not in the head.
// Constants are always bound.
func (q CQ) Unbound(idx, pos int) bool {
	a := q.Body[idx].Args[pos]
	if !a.IsVar {
		return false
	}
	if q.IsHeadVar(a.Var) {
		return false
	}
	for _, f := range q.Filters {
		if f.Arg.IsVar && f.Arg.Var == a.Var {
			return false // constrained by a filter
		}
	}
	return q.VarCounts()[a.Var] == 1
}

// Substitution maps variable names to arguments.
type Substitution map[string]Arg

// Apply rewrites an argument under the substitution (chasing chains of
// variable renamings).
func (s Substitution) Apply(a Arg) Arg {
	for a.IsVar {
		next, ok := s[a.Var]
		if !ok || next.Equal(a) {
			return a
		}
		a = next
	}
	return a
}

// ApplyCQ rewrites a whole query under the substitution. Head variables
// mapped to other variables are renamed; head variables mapped to
// constants are dropped from the head (the answer becomes partially
// fixed), matching PerfectRef's reduce step.
func (s Substitution) ApplyCQ(q CQ) CQ {
	out := q.Clone()
	for i, a := range out.Body {
		for j, x := range a.Args {
			out.Body[i].Args[j] = s.Apply(x)
		}
	}
	var head []string
	for _, h := range out.Head {
		r := s.Apply(V(h))
		if r.IsVar {
			head = append(head, r.Var)
		} else {
			head = append(head, h) // keep name; bound elsewhere
		}
	}
	out.Head = head
	for i, f := range out.Filters {
		out.Filters[i].Arg = s.Apply(f.Arg)
	}
	return out
}

// MGU computes the most general unifier of two atoms with the same
// predicate and arity, or reports failure. Head variables unify like any
// other variable (PerfectRef's reduce applies the unifier to the whole
// query including the head).
func MGU(a, b Atom) (Substitution, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := Substitution{}
	for i := range a.Args {
		x := s.Apply(a.Args[i])
		y := s.Apply(b.Args[i])
		switch {
		case x.Equal(y):
		case x.IsVar:
			s[x.Var] = y
		case y.IsVar:
			s[y.Var] = x
		default:
			return nil, false // distinct constants
		}
	}
	return s, true
}

// DedupAtoms removes duplicate atoms, preserving order.
func DedupAtoms(body []Atom) []Atom {
	var out []Atom
	for _, a := range body {
		dup := false
		for _, b := range out {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// Reduce unifies body atoms i and j (which must unify) and returns the
// reduced query with duplicates removed.
func Reduce(q CQ, i, j int) (CQ, bool) {
	s, ok := MGU(q.Body[i], q.Body[j])
	if !ok {
		return CQ{}, false
	}
	out := s.ApplyCQ(q)
	out.Body = DedupAtoms(out.Body)
	return out, true
}

// Canonical returns a normal form string usable as a dedup key: variables
// renamed by first occurrence after sorting atoms by a structure-only
// key. Queries with equal canonical strings are isomorphic; the converse
// may not hold, which only costs duplicates, not correctness.
func (q CQ) Canonical() string {
	type atomKey struct {
		orig Atom
		key  string
	}
	keys := make([]atomKey, len(q.Body))
	headSet := map[string]bool{}
	for _, h := range q.Head {
		headSet[h] = true
	}
	for i, a := range q.Body {
		parts := make([]string, 0, len(a.Args)+1)
		parts = append(parts, a.Pred)
		for _, x := range a.Args {
			switch {
			case !x.IsVar:
				parts = append(parts, x.Const.String())
			case headSet[x.Var]:
				parts = append(parts, "?H:"+x.Var) // head vars keep names
			default:
				parts = append(parts, "?_")
			}
		}
		keys[i] = atomKey{a, strings.Join(parts, "|")}
	}
	sort.SliceStable(keys, func(x, y int) bool { return keys[x].key < keys[y].key })
	rename := map[string]string{}
	next := 0
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k.orig.Pred)
		sb.WriteByte('(')
		for idx, x := range k.orig.Args {
			if idx > 0 {
				sb.WriteByte(',')
			}
			switch {
			case !x.IsVar:
				sb.WriteString(x.Const.String())
			case headSet[x.Var]:
				sb.WriteString("?" + x.Var)
			default:
				r, ok := rename[x.Var]
				if !ok {
					r = fmt.Sprintf("?v%d", next)
					next++
					rename[x.Var] = r
				}
				sb.WriteString(r)
			}
		}
		sb.WriteByte(')')
		sb.WriteByte(' ')
	}
	fstrs := make([]string, 0, len(q.Filters))
	for _, f := range q.Filters {
		arg := f.Arg
		if arg.IsVar && !headSet[arg.Var] {
			if r, ok := rename[arg.Var]; ok {
				fstrs = append(fstrs, r+f.Op+f.Value.String())
				continue
			}
		}
		fstrs = append(fstrs, arg.String()+f.Op+f.Value.String())
	}
	sort.Strings(fstrs)
	return "[" + strings.Join(q.Head, ",") + "] " + sb.String() + strings.Join(fstrs, " ")
}

// Homomorphism reports whether there is a homomorphism from q2 into q1
// that is the identity on head variables (so q1 ⊆ q2 as queries: every
// answer of q1 is an answer of q2).
func Homomorphism(from, to CQ) bool {
	if len(from.Head) != len(to.Head) {
		return false
	}
	// Cheap rejection: every predicate of the source must occur in the
	// target (a homomorphism preserves predicates).
	preds := make(map[string]bool, len(to.Body))
	for _, a := range to.Body {
		preds[a.Pred] = true
	}
	for _, a := range from.Body {
		if !preds[a.Pred] {
			return false
		}
	}
	// Map head vars positionally. The binding maps source variables to
	// final target arguments; source and target variable namespaces are
	// distinct even when names coincide, so bindings are never chased.
	// A repeated source head variable must map to one target variable:
	// q(x,x) answers pairs with equal components, which never cover
	// q(x,y)'s independent pairs.
	h := Substitution{}
	for i, v := range from.Head {
		want := V(to.Head[i])
		if prev, ok := h[v]; ok {
			if !prev.Equal(want) {
				return false
			}
			continue
		}
		h[v] = want
	}
	if !matchAtoms(from.Body, 0, h, to.Body) {
		return false
	}
	// Filters: every filter of the source must hold on the target's
	// answers; conservatively require a syntactically matching filter on
	// the target after applying the head binding. (matchAtoms may bind
	// body vars too, but filters on non-head vars rarely survive both
	// sides; missing a containment only keeps a redundant disjunct.)
	for _, f := range from.Filters {
		arg := f.Arg
		if arg.IsVar {
			if mapped, ok := h[arg.Var]; ok {
				arg = mapped
			}
		}
		found := false
		for _, g := range to.Filters {
			if g.Op == f.Op && g.Value == f.Value && g.Arg.Equal(arg) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// matchAtoms backtracks over candidate targets, mutating one shared
// binding with undo (no per-branch map copies).
func matchAtoms(src []Atom, idx int, s Substitution, target []Atom) bool {
	if idx == len(src) {
		return true
	}
	a := src[idx]
	for _, t := range target {
		if t.Pred != a.Pred || len(t.Args) != len(a.Args) {
			continue
		}
		var added []string
		ok := true
		for i := range a.Args {
			x := a.Args[i]
			y := t.Args[i]
			if x.IsVar {
				if bound, exists := s[x.Var]; exists {
					// Already mapped to a target arg: must equal y exactly.
					if !bound.Equal(y) {
						ok = false
						break
					}
					continue
				}
				s[x.Var] = y
				added = append(added, x.Var)
				continue
			}
			if !x.Equal(y) {
				ok = false
				break
			}
		}
		if ok && matchAtoms(src, idx+1, s, target) {
			return true
		}
		for _, v := range added {
			delete(s, v)
		}
	}
	return false
}

// ContainedIn reports q1 ⊆ q2 (every answer of q1 over any data is an
// answer of q2), decided by homomorphism from q2 into q1.
func ContainedIn(q1, q2 CQ) bool {
	return Homomorphism(q2, q1)
}

// UCQ is a union of conjunctive queries.
type UCQ []CQ

// String renders the union.
func (u UCQ) String() string {
	parts := make([]string, len(u))
	for i, q := range u {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\nUNION ")
}

// Minimize removes syntactic duplicates and CQs subsumed by another
// disjunct, preserving the union's semantics.
func (u UCQ) Minimize() UCQ {
	// Drop exact duplicates first.
	seen := map[string]bool{}
	var dedup UCQ
	for _, q := range u {
		k := q.Canonical()
		if seen[k] {
			continue
		}
		seen[k] = true
		dedup = append(dedup, q)
	}
	// Drop q_i contained in some other q_j.
	var out UCQ
	for i, qi := range dedup {
		redundant := false
		for j, qj := range dedup {
			if i == j {
				continue
			}
			if ContainedIn(qi, qj) {
				// Break ties (mutual containment) by keeping the first.
				if !ContainedIn(qj, qi) || j < i {
					redundant = true
					break
				}
			}
		}
		if !redundant {
			out = append(out, qi)
		}
	}
	return out
}

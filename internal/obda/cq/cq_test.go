package cq

import (
	"testing"

	"repro/internal/rdf"
)

func TestArgAndAtomBasics(t *testing.T) {
	x := V("x")
	c := C(rdf.NewIRI("http://e/t1"))
	if x.String() != "?x" {
		t.Error("var string")
	}
	if !x.Equal(V("x")) || x.Equal(V("y")) || x.Equal(c) {
		t.Error("arg equality")
	}
	a := ClassAtom("Turbine", x)
	if !a.IsClass() || a.String() != "Turbine(?x)" {
		t.Errorf("class atom = %s", a)
	}
	p := PropAtom("inAssembly", x, V("y"))
	if p.IsClass() || p.String() != "inAssembly(?x,?y)" {
		t.Errorf("prop atom = %s", p)
	}
}

func TestCQValidate(t *testing.T) {
	q := New([]string{"x"}, ClassAtom("A", V("x")))
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CQ{
		New([]string{"x"}),                                // empty body
		New([]string{"z"}, ClassAtom("A", V("x"))),        // head not in body
		{Head: nil, Body: []Atom{{Pred: "A", Args: nil}}}, // arity 0
		{Head: nil, Body: []Atom{{Pred: "", Args: []Arg{V("x")}}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnboundDetection(t *testing.T) {
	// q(x) :- P(x,y), A(x): y occurs once and is not in head -> unbound.
	q := New([]string{"x"}, PropAtom("P", V("x"), V("y")), ClassAtom("A", V("x")))
	if !q.Unbound(0, 1) {
		t.Error("y should be unbound")
	}
	if q.Unbound(0, 0) {
		t.Error("x is head var, should be bound")
	}
	// y in head -> bound.
	q2 := New([]string{"y"}, PropAtom("P", V("x"), V("y")))
	if q2.Unbound(0, 1) {
		t.Error("head var y should be bound")
	}
	// y occurs twice -> bound.
	q3 := New([]string{"x"}, PropAtom("P", V("x"), V("y")), PropAtom("Q", V("y"), V("z")))
	if q3.Unbound(0, 1) {
		t.Error("shared var y should be bound")
	}
	// Constants are bound.
	q4 := New(nil, PropAtom("P", C(rdf.NewIRI("c")), V("y")))
	if q4.Unbound(0, 0) {
		t.Error("constant should be bound")
	}
}

func TestMGU(t *testing.T) {
	a := PropAtom("P", V("x"), V("y"))
	b := PropAtom("P", V("x"), C(rdf.NewIRI("c")))
	s, ok := MGU(a, b)
	if !ok {
		t.Fatal("unification failed")
	}
	if got := s.Apply(V("y")); got.IsVar || got.Const.Value != "c" {
		t.Errorf("y -> %v", got)
	}
	// Mismatched predicates and constants fail.
	if _, ok := MGU(a, PropAtom("Q", V("x"), V("y"))); ok {
		t.Error("different predicates unified")
	}
	c1 := PropAtom("P", C(rdf.NewIRI("a")), V("x"))
	c2 := PropAtom("P", C(rdf.NewIRI("b")), V("x"))
	if _, ok := MGU(c1, c2); ok {
		t.Error("distinct constants unified")
	}
	// Chained renaming: P(x,y) ~ P(y,c).
	s2, ok := MGU(PropAtom("P", V("x"), V("y")), PropAtom("P", V("y"), C(rdf.NewIRI("c"))))
	if !ok {
		t.Fatal("chain unification failed")
	}
	if got := s2.Apply(V("x")); got.IsVar || got.Const.Value != "c" {
		t.Errorf("x resolves to %v, want c", got)
	}
}

func TestReduce(t *testing.T) {
	// q(x) :- P(x,y), P(x,c)  reduces to  q(x) :- P(x,c).
	q := New([]string{"x"},
		PropAtom("P", V("x"), V("y")),
		PropAtom("P", V("x"), C(rdf.NewIRI("c"))))
	r, ok := Reduce(q, 0, 1)
	if !ok {
		t.Fatal("reduce failed")
	}
	if len(r.Body) != 1 {
		t.Fatalf("reduced body = %v", r.Body)
	}
	if r.Body[0].Args[1].IsVar {
		t.Errorf("object should be constant: %v", r.Body[0])
	}
}

func TestCanonicalIsomorphism(t *testing.T) {
	q1 := New([]string{"x"}, ClassAtom("A", V("x")), PropAtom("P", V("x"), V("y")))
	q2 := New([]string{"x"}, PropAtom("P", V("x"), V("z")), ClassAtom("A", V("x")))
	if q1.Canonical() != q2.Canonical() {
		t.Errorf("isomorphic queries canonicalise differently:\n%s\n%s",
			q1.Canonical(), q2.Canonical())
	}
	q3 := New([]string{"x"}, ClassAtom("B", V("x")))
	if q1.Canonical() == q3.Canonical() {
		t.Error("distinct queries share canonical form")
	}
}

func TestContainment(t *testing.T) {
	// q1(x) :- A(x), P(x,y)   is contained in   q2(x) :- P(x,y').
	q1 := New([]string{"x"}, ClassAtom("A", V("x")), PropAtom("P", V("x"), V("y")))
	q2 := New([]string{"x"}, PropAtom("P", V("x"), V("w")))
	if !ContainedIn(q1, q2) {
		t.Error("q1 should be contained in q2")
	}
	if ContainedIn(q2, q1) {
		t.Error("q2 should not be contained in q1")
	}
	// Constants: q(x) :- P(x,c) contained in q(x) :- P(x,y).
	qc := New([]string{"x"}, PropAtom("P", V("x"), C(rdf.NewIRI("c"))))
	if !ContainedIn(qc, q2) {
		t.Error("constant query containment")
	}
	if ContainedIn(q2, qc) {
		t.Error("general query contained in constant query")
	}
}

func TestContainmentHeadSensitive(t *testing.T) {
	// Same body, different head arity: no containment.
	q1 := New([]string{"x"}, PropAtom("P", V("x"), V("y")))
	q2 := New([]string{"x", "y"}, PropAtom("P", V("x"), V("y")))
	if ContainedIn(q1, q2) || ContainedIn(q2, q1) {
		t.Error("containment across different head arities")
	}
}

func TestUCQMinimize(t *testing.T) {
	a := New([]string{"x"}, ClassAtom("GasTurbine", V("x")))
	aDup := New([]string{"x"}, ClassAtom("GasTurbine", V("x")))
	general := New([]string{"x"}, ClassAtom("Turbine", V("x")))
	specific := New([]string{"x"}, ClassAtom("Turbine", V("x")), PropAtom("hasPart", V("x"), V("p")))

	u := UCQ{a, aDup, general, specific}.Minimize()
	if len(u) != 2 {
		t.Fatalf("minimized = %v", u)
	}
	// 'specific' ⊆ 'general' so it must be gone; duplicate 'a' gone.
	for _, q := range u {
		if len(q.Body) == 2 {
			t.Errorf("subsumed query survived: %v", q)
		}
	}
}

func TestUCQMinimizeMutualContainment(t *testing.T) {
	// Isomorphic queries with different var names: keep exactly one.
	q1 := New([]string{"x"}, PropAtom("P", V("x"), V("y")))
	q2 := New([]string{"x"}, PropAtom("P", V("x"), V("z")))
	u := UCQ{q1, q2}.Minimize()
	if len(u) != 1 {
		t.Fatalf("minimized = %v", u)
	}
}

func TestSubstitutionApplyCQKeepsHead(t *testing.T) {
	q := New([]string{"x"}, PropAtom("P", V("x"), V("y")))
	s := Substitution{"y": C(rdf.NewIRI("c"))}
	r := s.ApplyCQ(q)
	if len(r.Head) != 1 || r.Head[0] != "x" {
		t.Errorf("head = %v", r.Head)
	}
	if r.Body[0].Args[1].IsVar {
		t.Errorf("substitution not applied: %v", r.Body[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	q := New([]string{"x"}, PropAtom("P", V("x"), V("y")))
	c := q.Clone()
	c.Body[0].Args[1] = C(rdf.NewIRI("z"))
	c.Head[0] = "w"
	if !q.Body[0].Args[1].IsVar || q.Head[0] != "x" {
		t.Error("clone shares storage")
	}
}

func TestContainmentRepeatedHeadVars(t *testing.T) {
	// q(x,x) answers pairs with equal components; q(x,y) answers
	// arbitrary pairs. q(x,x) ⊆ q(x,y) but NOT vice versa — the reduce
	// step of PerfectRef produces such repeated-head queries, and a
	// containment check that ignored the repetition dropped sound
	// disjuncts (regression for the bug found by
	// TestPerfectRefMatchesSaturation trial 37).
	eq := CQ{Head: []string{"x", "x"}, Body: []Atom{PropAtom("p", V("x"), V("x"))}}
	free := New([]string{"x", "y"}, PropAtom("p", V("x"), V("y")))
	if !ContainedIn(eq, free) {
		t.Error("q(x,x) should be contained in q(x,y)")
	}
	if ContainedIn(free, eq) {
		t.Error("q(x,y) must not be contained in q(x,x)")
	}
}

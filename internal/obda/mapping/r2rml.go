package mapping

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/sql"
)

// R2RML export (BootOX "allows to extract W3C standardised OWL 2
// ontologies and R2RML mappings"): serialise a mapping set as an R2RML
// mapping graph. Templates translate directly ({col} both languages'
// placeholder form, theirs spelled {"col"} — we emit the standard
// {col}); sources with filters become R2RML views (rr:sqlQuery), plain
// sources become rr:tableName.

// R2RML vocabulary IRIs.
const (
	rrNS           = "http://www.w3.org/ns/r2rml#"
	rrTriplesMap   = rrNS + "TriplesMap"
	rrLogicalTable = rrNS + "logicalTable"
	rrTableName    = rrNS + "tableName"
	rrSQLQuery     = rrNS + "sqlQuery"
	rrSubjectMap   = rrNS + "subjectMap"
	rrTemplate     = rrNS + "template"
	rrClass        = rrNS + "class"
	rrPredObjMap   = rrNS + "predicateObjectMap"
	rrPredicate    = rrNS + "predicate"
	rrObjectMap    = rrNS + "objectMap"
	rrColumn       = rrNS + "column"
)

// ToR2RML converts the set to an RDF graph in the R2RML vocabulary.
// Mappings are grouped into one TriplesMap per (source, subject
// template): that is the natural R2RML granularity (one subject map,
// many predicate-object maps).
func (s *Set) ToR2RML(baseIRI string) *rdf.Graph {
	g := rdf.NewGraph()
	type groupKey struct {
		source  string
		where   string
		subject string
	}
	groups := map[groupKey][]Mapping{}
	var keys []groupKey
	for _, m := range s.All() {
		k := groupKey{m.Source.Table, exprString(m.Source.Where), m.Subject.String()}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].source != keys[j].source {
			return keys[i].source < keys[j].source
		}
		if keys[i].subject != keys[j].subject {
			return keys[i].subject < keys[j].subject
		}
		return keys[i].where < keys[j].where
	})

	typeIRI := rdf.NewIRI(rdf.RDFType)
	for i, k := range keys {
		ms := groups[k]
		tm := rdf.NewIRI(fmt.Sprintf("%smap/%d", baseIRI, i+1))
		g.Add(rdf.NewTriple(tm, typeIRI, rdf.NewIRI(rrTriplesMap)))

		lt := rdf.NewBlank(fmt.Sprintf("lt%d", i+1))
		g.Add(rdf.NewTriple(tm, rdf.NewIRI(rrLogicalTable), lt))
		if k.where == "" {
			g.Add(rdf.NewTriple(lt, rdf.NewIRI(rrTableName), rdf.NewLiteral(k.source)))
		} else {
			q := fmt.Sprintf("SELECT * FROM %s WHERE %s", k.source, k.where)
			g.Add(rdf.NewTriple(lt, rdf.NewIRI(rrSQLQuery), rdf.NewLiteral(q)))
		}

		sm := rdf.NewBlank(fmt.Sprintf("sm%d", i+1))
		g.Add(rdf.NewTriple(tm, rdf.NewIRI(rrSubjectMap), sm))
		g.Add(rdf.NewTriple(sm, rdf.NewIRI(rrTemplate), rdf.NewLiteral(k.subject)))

		pomIdx := 0
		for _, m := range ms {
			if m.IsClass {
				g.Add(rdf.NewTriple(sm, rdf.NewIRI(rrClass), rdf.NewIRI(m.Pred)))
				continue
			}
			pomIdx++
			pom := rdf.NewBlank(fmt.Sprintf("pom%d_%d", i+1, pomIdx))
			g.Add(rdf.NewTriple(tm, rdf.NewIRI(rrPredObjMap), pom))
			g.Add(rdf.NewTriple(pom, rdf.NewIRI(rrPredicate), rdf.NewIRI(m.Pred)))
			om := rdf.NewBlank(fmt.Sprintf("om%d_%d", i+1, pomIdx))
			g.Add(rdf.NewTriple(pom, rdf.NewIRI(rrObjectMap), om))
			if m.ObjectIsData && m.Object.IsRawColumn() {
				g.Add(rdf.NewTriple(om, rdf.NewIRI(rrColumn), rdf.NewLiteral(m.Object.Columns[0])))
			} else {
				g.Add(rdf.NewTriple(om, rdf.NewIRI(rrTemplate), rdf.NewLiteral(m.Object.String())))
			}
		}
	}
	return g
}

// R2RMLTurtle serialises the set as Turtle text with the rr: prefix.
func (s *Set) R2RMLTurtle(baseIRI string) string {
	g := s.ToR2RML(baseIRI)
	pm := rdf.StandardPrefixes()
	pm["rr"] = rrNS
	return rdf.WriteTurtle(g.Triples(), pm)
}

func exprString(e sql.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}

package mapping

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/obda/cq"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
)

// pruneRig builds a parent/child catalog honouring the declared
// constraints: parent p(pid unique, pattr), child c(cid unique, pid)
// with every c.pid present in p (the inclusion dependency the mappings
// declare).
func pruneRig(t *testing.T, rng *rand.Rand, parents, children int) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	p, err := cat.Create("p", relation.NewSchema(
		relation.Col("pid", relation.TInt), relation.Col("pattr", relation.TString)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cat.Create("c", relation.NewSchema(
		relation.Col("cid", relation.TInt), relation.Col("pid", relation.TInt)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < parents; i++ {
		p.MustInsert(relation.Tuple{relation.Int(int64(i)), relation.String_(fmt.Sprintf("a%d", i%3))})
	}
	for i := 0; i < children; i++ {
		c.MustInsert(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(rng.Intn(parents)))})
	}
	return cat
}

func pruneMappings(exactDup bool) *Set {
	childT := MustParseTemplate("http://e/c/{cid}")
	parentT := MustParseTemplate("http://e/p/{pid}")
	fkChild := []ForeignKey{{Columns: []string{"pid"}, RefTable: "p", RefColumns: []string{"pid"}}}
	ms := []Mapping{
		{ID: "child", Pred: "Child", IsClass: true, Subject: childT,
			Source: SourceRef{Table: "c"}, KeyColumns: []string{"cid"},
			FKs: fkChild, Exact: exactDup},
		// A redundant duplicate reading the same source; with Exact set
		// on the first, restriction drops the branches this one breeds.
		{ID: "child2", Pred: "Child", IsClass: true, Subject: childT,
			Source: SourceRef{Table: "c"}, KeyColumns: []string{"cid"}, FKs: fkChild},
		{ID: "parent", Pred: "Parent", IsClass: true, Subject: parentT,
			Source: SourceRef{Table: "p"}, KeyColumns: []string{"pid"}},
		{ID: "hasParent", Pred: "hasParent", Subject: childT, Object: MustParseTemplate("http://e/p/{pid}"),
			Source: SourceRef{Table: "c"}, KeyColumns: []string{"cid"}, FKs: fkChild},
	}
	return MustNewSet(ms...)
}

// executeFleet runs every fleet member against the catalog and returns
// the distinct result rows (fleet members are unioned under set
// semantics by the layer above).
func executeFleet(t *testing.T, fleet []*sql.SelectStmt, cat *relation.Catalog) []string {
	t.Helper()
	seen := map[string]struct{}{}
	for _, stmt := range fleet {
		plan, err := engine.Build(stmt, engine.CatalogResolver(cat))
		if err != nil {
			t.Fatalf("build %s: %v", stmt.String(), err)
		}
		rows, err := plan.Execute(engine.NewExecContext(cat))
		if err != nil {
			t.Fatalf("execute %s: %v", stmt.String(), err)
		}
		for _, r := range rows {
			seen[fmt.Sprint(r)] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestRestrictExactDropsRedundantBranches(t *testing.T) {
	u := cq.UCQ{cq.New([]string{"x"}, cq.ClassAtom("Child", cq.V("x")))}
	set := pruneMappings(true)
	fleet, stats, err := Unfold(u, set, UnfoldOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 {
		t.Fatalf("fleet = %d members, want 1 (exact restriction)", len(fleet))
	}
	if stats.ConstraintPruned == 0 {
		t.Error("ConstraintPruned not counted")
	}
	// Without Prune both candidates breed a branch.
	fleet, _, err = Unfold(u, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 2 {
		t.Fatalf("unpruned fleet = %d members, want 2", len(fleet))
	}
}

func TestFKJoinEliminated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat := pruneRig(t, rng, 10, 30)
	u := cq.UCQ{cq.New([]string{"x", "y"},
		cq.PropAtom("hasParent", cq.V("x"), cq.V("y")),
		cq.ClassAtom("Parent", cq.V("y")))}
	set := pruneMappings(false)

	plain, _, err := Unfold(u, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, stats, err := Unfold(u, set, UnfoldOptions{Prune: true, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FKJoinsRemoved == 0 {
		t.Fatal("FK join not eliminated")
	}
	for _, stmt := range pruned {
		if len(stmt.From) != 1 {
			t.Fatalf("join survives pruning: %s", stmt.String())
		}
	}
	want := executeFleet(t, plain, cat)
	got := executeFleet(t, pruned, cat)
	if len(want) == 0 {
		t.Fatal("oracle fleet returned nothing — vacuous")
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("FK elimination changed answers:\nwant %v\ngot  %v", want, got)
	}
}

func TestFKProbeDropsEmptyBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cat := pruneRig(t, rng, 10, 30)
	set := pruneMappings(false)
	// x constant with pid=999, absent from p: the FK probe proves the
	// branch empty at unfolding time.
	u := cq.UCQ{cq.New([]string{"x"},
		cq.PropAtom("hasParent", cq.V("x"), cq.C(rdf.NewIRI("http://e/p/999"))))}
	fleet, stats, err := Unfold(u, set, UnfoldOptions{Prune: true, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 0 {
		t.Fatalf("provably-empty branch survived: %d members", len(fleet))
	}
	if stats.ConstraintPruned == 0 {
		t.Error("ConstraintPruned not counted for the FK probe")
	}
	// A present constant keeps the branch.
	u = cq.UCQ{cq.New([]string{"x"},
		cq.PropAtom("hasParent", cq.V("x"), cq.C(rdf.NewIRI("http://e/p/3"))))}
	fleet, _, err = Unfold(u, set, UnfoldOptions{Prune: true, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 {
		t.Fatalf("satisfiable branch dropped: %d members", len(fleet))
	}
}

// TestPruneRandomizedDifferential is the seeded differential oracle:
// over randomized catalogs, queries, and constraint declarations, the
// constraint-pruned fleet must return exactly the answers of the
// as-written fleet (set semantics).
func TestPruneRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var prunedSomething bool
	for iter := 0; iter < 40; iter++ {
		parents := 2 + rng.Intn(12)
		children := 1 + rng.Intn(40)
		cat := pruneRig(t, rng, parents, children)
		set := pruneMappings(rng.Intn(2) == 0)

		var u cq.UCQ
		switch rng.Intn(4) {
		case 0:
			u = cq.UCQ{cq.New([]string{"x"}, cq.ClassAtom("Child", cq.V("x")))}
		case 1:
			u = cq.UCQ{cq.New([]string{"x", "y"},
				cq.PropAtom("hasParent", cq.V("x"), cq.V("y")),
				cq.ClassAtom("Parent", cq.V("y")))}
		case 2:
			// Constant object, present or absent at random.
			pid := rng.Intn(2 * parents)
			u = cq.UCQ{cq.New([]string{"x"},
				cq.PropAtom("hasParent", cq.V("x"), cq.C(rdf.NewIRI(fmt.Sprintf("http://e/p/%d", pid)))))}
		default:
			u = cq.UCQ{cq.New([]string{"x", "y"},
				cq.ClassAtom("Child", cq.V("x")),
				cq.PropAtom("hasParent", cq.V("x"), cq.V("y")),
				cq.ClassAtom("Parent", cq.V("y")))}
		}

		plain, _, err := Unfold(u, set, UnfoldOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pruned, stats, err := Unfold(u, set, UnfoldOptions{Prune: true, Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		if stats.ConstraintPruned > 0 || stats.FKJoinsRemoved > 0 {
			prunedSomething = true
		}
		want := executeFleet(t, plain, cat)
		got := executeFleet(t, pruned, cat)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("iter %d: pruned fleet diverges\nwant %v\ngot  %v", iter, want, got)
		}
	}
	if !prunedSomething {
		t.Fatal("no iteration exercised pruning — differential is vacuous")
	}
}

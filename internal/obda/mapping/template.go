// Package mapping implements the OBSSDI mapping layer (challenge C2):
// global-as-view mappings in the paper's form
//
//	Turbine(f(~x)) <- EXISTS ~y SQL(~x, ~y)
//
// where f is an IRI template over the SQL output columns, plus the
// unfolding stage that translates an enriched UCQ into a fleet of SQL(+)
// queries, including the redundant-join (self-join) elimination that
// makes unfolded fleets executable.
package mapping

import (
	"fmt"
	"strings"
)

// Template is the function symbol f(~x) of a mapping: an IRI (or value)
// template with literal segments and column placeholders, e.g.
// "http://siemens.com/turbine/{tid}". A bare "{col}" template denotes the
// raw column value (used for data property objects).
type Template struct {
	// Literals has len(Columns)+1 entries; the rendered value is
	// Literals[0] + col0 + Literals[1] + col1 + ... + Literals[n].
	Literals []string
	Columns  []string
}

// ParseTemplate parses "lit{col}lit{col}..." syntax.
func ParseTemplate(s string) (Template, error) {
	var t Template
	rest := s
	lit := strings.Builder{}
	for {
		open := strings.IndexByte(rest, '{')
		if open < 0 {
			lit.WriteString(rest)
			break
		}
		closeIdx := strings.IndexByte(rest[open:], '}')
		if closeIdx < 0 {
			return Template{}, fmt.Errorf("mapping: unterminated '{' in template %q", s)
		}
		col := rest[open+1 : open+closeIdx]
		if col == "" {
			return Template{}, fmt.Errorf("mapping: empty column in template %q", s)
		}
		lit.WriteString(rest[:open])
		t.Literals = append(t.Literals, lit.String())
		lit.Reset()
		t.Columns = append(t.Columns, col)
		rest = rest[open+closeIdx+1:]
	}
	t.Literals = append(t.Literals, lit.String())
	if len(t.Columns) == 0 {
		return Template{}, fmt.Errorf("mapping: template %q has no columns", s)
	}
	return t, nil
}

// MustParseTemplate panics on error; for statically-known templates.
func MustParseTemplate(s string) Template {
	t, err := ParseTemplate(s)
	if err != nil {
		panic(err)
	}
	return t
}

// IsRawColumn reports whether the template is a bare "{col}" denoting a
// raw value (data property object).
func (t Template) IsRawColumn() bool {
	return len(t.Columns) == 1 && t.Literals[0] == "" && t.Literals[1] == ""
}

// String renders the template back to its source syntax.
func (t Template) String() string {
	var sb strings.Builder
	for i, c := range t.Columns {
		sb.WriteString(t.Literals[i])
		sb.WriteString("{" + c + "}")
	}
	sb.WriteString(t.Literals[len(t.Literals)-1])
	return sb.String()
}

// Compatible reports whether two templates can produce equal values only
// when their corresponding columns are equal: i.e. they share the literal
// skeleton. Joining variables across incompatible templates yields the
// empty result, so unfolding prunes such combinations.
func (t Template) Compatible(u Template) bool {
	if len(t.Columns) != len(u.Columns) || len(t.Literals) != len(u.Literals) {
		return false
	}
	for i := range t.Literals {
		if t.Literals[i] != u.Literals[i] {
			return false
		}
	}
	return true
}

// Invert matches a concrete value against the template and returns the
// column segment values in order; ok is false when the value cannot be
// produced by this template. Inversion is unambiguous when literal
// separators are non-empty; with empty separators it takes the shortest
// match, which suffices for the identifier schemes used here.
func (t Template) Invert(value string) (segments []string, ok bool) {
	rest := value
	if !strings.HasPrefix(rest, t.Literals[0]) {
		return nil, false
	}
	rest = rest[len(t.Literals[0]):]
	for i := range t.Columns {
		sep := t.Literals[i+1]
		if i == len(t.Columns)-1 && sep == "" {
			segments = append(segments, rest)
			rest = ""
			continue
		}
		var idx int
		if sep == "" {
			idx = 1 // shortest non-empty segment
			if len(rest) == 0 {
				return nil, false
			}
			segments = append(segments, rest[:idx])
			rest = rest[idx:]
			continue
		}
		idx = strings.Index(rest, sep)
		if idx < 0 {
			return nil, false
		}
		segments = append(segments, rest[:idx])
		rest = rest[idx+len(sep):]
	}
	if len(t.Literals[len(t.Literals)-1]) > 0 {
		// Final literal already consumed above via separator logic only
		// when it acted as a separator; ensure nothing dangles.
		if rest != "" {
			return nil, false
		}
	} else if rest != "" {
		return nil, false
	}
	for _, s := range segments {
		if s == "" {
			return nil, false
		}
	}
	return segments, true
}

// Render substitutes concrete segment values into the template.
func (t Template) Render(segments []string) (string, error) {
	if len(segments) != len(t.Columns) {
		return "", fmt.Errorf("mapping: template %s needs %d segments, got %d", t, len(t.Columns), len(segments))
	}
	var sb strings.Builder
	for i, s := range segments {
		sb.WriteString(t.Literals[i])
		sb.WriteString(s)
	}
	sb.WriteString(t.Literals[len(t.Literals)-1])
	return sb.String(), nil
}

package mapping

import (
	"strings"

	"repro/internal/sql"
)

// eliminateSelfJoins removes redundant self-joins from an unfolded
// statement: when two FROM aliases scan the same source and the WHERE
// clause equates all of the source's declared key columns between them,
// the second alias is merged into the first (the join can only pair each
// row with itself). This is the paper's "redundant joins" optimisation
// for automatically generated queries.
//
// It returns the number of aliases removed. The statement is modified in
// place: FROM items are dropped, column references rewritten, and
// trivially-true equalities (m0.k = m0.k) pruned.
func eliminateSelfJoins(stmt *sql.SelectStmt, combo []Mapping, aliases []string) int {
	removed := 0
	for {
		merged := false
		for i := 0; i < len(stmt.From) && !merged; i++ {
			for j := i + 1; j < len(stmt.From) && !merged; j++ {
				if combo[i].Source.Table != combo[j].Source.Table ||
					combo[i].Source.IsStream != combo[j].Source.IsStream {
					continue
				}
				key := combo[i].KeyColumns
				if len(key) == 0 || !equalStrings(key, combo[j].KeyColumns) {
					continue
				}
				if !keysEquated(stmt.Where, aliases[i], aliases[j], key) {
					continue
				}
				// Merge alias j into alias i.
				renameAliasInStmt(stmt, aliases[j], aliases[i])
				stmt.From = append(stmt.From[:j], stmt.From[j+1:]...)
				combo = append(combo[:j:j], combo[j+1:]...)
				aliases = append(aliases[:j:j], aliases[j+1:]...)
				stmt.Where = pruneTrivialEqualities(stmt.Where)
				removed++
				merged = true
			}
		}
		if !merged {
			return removed
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

func conjunctsOf(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == "AND" {
		return append(conjunctsOf(be.Left), conjunctsOf(be.Right)...)
	}
	return []sql.Expr{e}
}

// keysEquated reports whether the predicate contains aliasA.k = aliasB.k
// (either orientation) for every key column k.
func keysEquated(where sql.Expr, aliasA, aliasB string, key []string) bool {
	conj := conjunctsOf(where)
	for _, k := range key {
		found := false
		for _, c := range conj {
			be, ok := c.(*sql.BinaryExpr)
			if !ok || be.Op != "=" {
				continue
			}
			l, lok := be.Left.(*sql.ColumnRef)
			r, rok := be.Right.(*sql.ColumnRef)
			if !lok || !rok {
				continue
			}
			if !strings.EqualFold(l.Name, k) || !strings.EqualFold(r.Name, k) {
				continue
			}
			if (strings.EqualFold(l.Table, aliasA) && strings.EqualFold(r.Table, aliasB)) ||
				(strings.EqualFold(l.Table, aliasB) && strings.EqualFold(r.Table, aliasA)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// renameAliasInStmt rewrites every column reference using alias 'from' to
// use alias 'to' in the statement's items and WHERE clause.
func renameAliasInStmt(stmt *sql.SelectStmt, from, to string) {
	for i := range stmt.Items {
		stmt.Items[i].Expr = renameAlias(stmt.Items[i].Expr, from, to)
	}
	stmt.Where = renameAlias(stmt.Where, from, to)
}

func renameAlias(e sql.Expr, from, to string) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.ColumnRef:
		if strings.EqualFold(x.Table, from) {
			return &sql.ColumnRef{Table: to, Name: x.Name}
		}
		return x
	case *sql.BinaryExpr:
		return sql.Bin(x.Op, renameAlias(x.Left, from, to), renameAlias(x.Right, from, to))
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: renameAlias(x.Expr, from, to)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: renameAlias(x.Expr, from, to), Negate: x.Negate}
	case *sql.FuncExpr:
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameAlias(a, from, to)
		}
		return &sql.FuncExpr{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sql.InExpr:
		out := &sql.InExpr{Expr: renameAlias(x.Expr, from, to), Negate: x.Negate}
		for _, i := range x.List {
			out.List = append(out.List, renameAlias(i, from, to))
		}
		return out
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Else: renameAlias(x.Else, from, to)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.CaseWhen{
				Cond: renameAlias(w.Cond, from, to),
				Then: renameAlias(w.Then, from, to),
			})
		}
		return out
	default:
		return e
	}
}

// pruneTrivialEqualities drops conjuncts of the form x = x (same alias
// and column on both sides) and duplicate conjuncts.
func pruneTrivialEqualities(where sql.Expr) sql.Expr {
	conj := conjunctsOf(where)
	seen := map[string]bool{}
	var kept []sql.Expr
	for _, c := range conj {
		if be, ok := c.(*sql.BinaryExpr); ok && be.Op == "=" {
			l, lok := be.Left.(*sql.ColumnRef)
			r, rok := be.Right.(*sql.ColumnRef)
			if lok && rok && strings.EqualFold(l.Table, r.Table) && strings.EqualFold(l.Name, r.Name) {
				continue
			}
		}
		key := c.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, c)
	}
	return sql.AndAll(kept...)
}

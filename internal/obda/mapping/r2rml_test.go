package mapping

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
)

func TestR2RMLExport(t *testing.T) {
	set := siemensMappings(t)
	g := set.ToR2RML("http://siemens.com/mappings/")

	rrType := rdf.NewIRI(rdf.RDFType)
	maps := g.Subjects(rrType, rdf.NewIRI(rrTriplesMap))
	// Grouping by (source, subject template): turbines_a, turbines_b,
	// sensors, and the msmt stream = 4 triples maps (the model mapping
	// shares turbines_a's subject; inAssembly shares the sensors one).
	if len(maps) != 4 {
		t.Fatalf("TriplesMaps = %d: %v", len(maps), maps)
	}
	// Every triples map has a logical table and a subject map.
	for _, tm := range maps {
		if len(g.Objects(tm, rdf.NewIRI(rrLogicalTable))) != 1 {
			t.Errorf("%v lacks a logical table", tm)
		}
		if len(g.Objects(tm, rdf.NewIRI(rrSubjectMap))) != 1 {
			t.Errorf("%v lacks a subject map", tm)
		}
	}
	// The Turbine class appears as rr:class on some subject map.
	classTriples := g.Match(rdf.Wildcard, rdf.NewIRI(rrClass), rdf.NewIRI("Turbine"))
	if len(classTriples) != 2 { // turbines_a and turbines_b
		t.Errorf("rr:class Turbine triples = %d", len(classTriples))
	}
	// Data property objects use rr:column.
	cols := g.Match(rdf.Wildcard, rdf.NewIRI(rrColumn), rdf.Wildcard)
	if len(cols) == 0 {
		t.Error("no rr:column object maps")
	}
}

func TestR2RMLTurtleRoundTrips(t *testing.T) {
	set := siemensMappings(t)
	ttl := set.R2RMLTurtle("http://siemens.com/mappings/")
	if !strings.Contains(ttl, "@prefix rr:") {
		t.Errorf("missing rr prefix:\n%s", ttl)
	}
	ts, _, err := rdf.ParseTurtle(ttl)
	if err != nil {
		t.Fatalf("exported Turtle does not reparse: %v", err)
	}
	g := rdf.NewGraph()
	g.AddAll(ts)
	if g.Len() != set.ToR2RML("http://siemens.com/mappings/").Len() {
		t.Errorf("round trip changed triple count")
	}
}

func TestR2RMLViewForFilteredSource(t *testing.T) {
	set := MustNewSet(Mapping{
		Pred: "Hot", IsClass: true,
		Subject: MustParseTemplate("http://e/s/{sid}"),
		Source: SourceRef{Table: "sensors",
			Where: mustWhere(t)},
	})
	g := set.ToR2RML("http://e/maps/")
	views := g.Match(rdf.Wildcard, rdf.NewIRI(rrSQLQuery), rdf.Wildcard)
	if len(views) != 1 {
		t.Fatalf("rr:sqlQuery views = %d", len(views))
	}
	if !strings.Contains(views[0].O.Value, "SELECT * FROM sensors WHERE") {
		t.Errorf("view SQL = %q", views[0].O.Value)
	}
}

func mustWhere(t *testing.T) sql.Expr {
	t.Helper()
	return sql.Bin(">", sql.Col("temp"), sql.Lit(relation.Int(90)))
}

package mapping

import (
	"fmt"

	"repro/internal/obda/cq"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
)

// UnfoldOptions tunes the unfolding stage.
type UnfoldOptions struct {
	// MaxCombinations caps the per-CQ mapping combinations; 0 = 4096.
	MaxCombinations int
	// KeepSelfJoins disables self-join elimination; the ablation
	// benchmarks compare against it.
	KeepSelfJoins bool
	// Prune enables constraint-driven fleet pruning: exact-predicate
	// mappings restrict the candidate set per atom, contradictory
	// constant equalities and FK-implied empty branches are dropped, and
	// FK joins against a keyed parent are eliminated. Off, the fleet is
	// emitted exactly as-written (the differential oracle).
	Prune bool
	// Catalog supplies the static relations that FK emptiness probes run
	// against at registration time; nil disables the probes (the other
	// constraint rewrites still apply).
	Catalog *relation.Catalog
}

// UnfoldStats reports what unfolding did — the size of the paper's
// "fleet" of low-level data queries.
type UnfoldStats struct {
	CQs              int // disjuncts unfolded
	Combinations     int // mapping combinations considered
	Pruned           int // combinations pruned (incompatible templates / constants)
	FleetSize        int // SQL queries generated
	SelfJoinsRemoved int
	UnmappedAtoms    int // CQ disjuncts dropped because an atom had no mapping
	// ConstraintPruned counts union branches dropped by declared
	// constraints: exact-predicate restriction, contradictory constants,
	// and FK emptiness probes.
	ConstraintPruned int
	// FKJoinsRemoved counts redundant joins eliminated through declared
	// foreign keys (child joined to a keyed parent on the full FK).
	FKJoinsRemoved int
}

// Unfold translates an enriched UCQ into a fleet of SQL(+) SELECT
// statements via the mapping set, one statement per surviving
// (disjunct, mapping-combination) pair. Callers union the fleet or
// register its members individually with the DSMS.
//
// Each statement projects one column per answer variable (named after the
// variable); the value is the rendered IRI template (or the raw column
// for data values).
func Unfold(u cq.UCQ, set *Set, opts UnfoldOptions) ([]*sql.SelectStmt, UnfoldStats, error) {
	maxComb := opts.MaxCombinations
	if maxComb <= 0 {
		maxComb = 4096
	}
	var stats UnfoldStats
	var fleet []*sql.SelectStmt

	for _, q := range u {
		stats.CQs++
		candidates := make([][]Mapping, len(q.Body))
		unmapped := false
		for i, atom := range q.Body {
			ms := set.ForPred(atom.Pred)
			if len(ms) == 0 {
				unmapped = true
				break
			}
			candidates[i] = ms
		}
		if unmapped {
			stats.UnmappedAtoms++
			continue
		}
		if opts.Prune {
			restrictExact(candidates, &stats)
		}
		// Enumerate the cartesian product of per-atom mapping choices.
		combo := make([]Mapping, len(q.Body))
		var enumerate func(i int) error
		enumerate = func(i int) error {
			if stats.Combinations >= maxComb {
				return fmt.Errorf("mapping: unfolding exceeded %d combinations", maxComb)
			}
			if i == len(q.Body) {
				stats.Combinations++
				beforeConstraint := stats.ConstraintPruned
				stmt, ok, err := unfoldCombination(q, combo, opts, &stats)
				if err != nil {
					return err
				}
				switch {
				case ok:
					fleet = append(fleet, stmt)
				case stats.ConstraintPruned == beforeConstraint:
					stats.Pruned++
				}
				return nil
			}
			for _, m := range candidates[i] {
				combo[i] = m
				if err := enumerate(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := enumerate(0); err != nil {
			return nil, stats, err
		}
	}
	stats.FleetSize = len(fleet)
	return fleet, stats, nil
}

// occurrence records where a query variable surfaces in the combination.
type occurrence struct {
	alias string
	tmpl  Template
	data  bool // raw value (data property object)
}

func unfoldCombination(q cq.CQ, combo []Mapping, opts UnfoldOptions, stats *UnfoldStats) (*sql.SelectStmt, bool, error) {
	aliases := make([]string, len(combo))
	for i := range combo {
		aliases[i] = fmt.Sprintf("m%d", i)
	}

	occs := map[string][]occurrence{} // var -> occurrences
	var conds []sql.Expr

	addArg := func(arg cq.Arg, alias string, tmpl Template, isData bool) bool {
		if arg.IsVar {
			occs[arg.Var] = append(occs[arg.Var], occurrence{alias, tmpl, isData})
			return true
		}
		// Constant: invert the template into per-column conditions.
		val := arg.Const.Value
		if isData || arg.Const.IsLiteral() {
			if !tmpl.IsRawColumn() {
				return false
			}
			conds = append(conds, sql.Bin("=",
				&sql.ColumnRef{Table: alias, Name: tmpl.Columns[0]},
				literalFor(arg.Const)))
			return true
		}
		segs, ok := tmpl.Invert(val)
		if !ok {
			return false
		}
		for i, seg := range segs {
			conds = append(conds, sql.Bin("=",
				&sql.ColumnRef{Table: alias, Name: tmpl.Columns[i]},
				segmentLiteral(seg)))
		}
		return true
	}

	for i, atom := range q.Body {
		m := combo[i]
		// Shape check: class atoms need class mappings and vice versa.
		if atom.IsClass() != m.IsClass {
			return nil, false, nil
		}
		if !addArg(atom.Args[0], aliases[i], m.Subject, false) {
			return nil, false, nil
		}
		if !atom.IsClass() {
			if !addArg(atom.Args[1], aliases[i], m.Object, m.ObjectIsData) {
				return nil, false, nil
			}
		}
		// Source-level filters, alias-qualified.
		if m.Source.Where != nil {
			conds = append(conds, qualifyExpr(m.Source.Where, aliases[i]))
		}
	}

	// Filter side-conditions.
	for _, f := range q.Filters {
		cond, ok := filterCond(f, occs)
		if !ok {
			return nil, false, nil // filter unsatisfiable for this combination
		}
		conds = append(conds, cond)
	}

	// Join conditions from shared variables.
	for _, os := range occs {
		for i := 1; i < len(os); i++ {
			a, b := os[0], os[i]
			if a.data != b.data && !(a.tmpl.IsRawColumn() && b.tmpl.IsRawColumn()) {
				// An IRI can never equal a raw data value.
				return nil, false, nil
			}
			if a.data || a.tmpl.IsRawColumn() && b.tmpl.IsRawColumn() {
				conds = append(conds, sql.Bin("=",
					&sql.ColumnRef{Table: a.alias, Name: a.tmpl.Columns[0]},
					&sql.ColumnRef{Table: b.alias, Name: b.tmpl.Columns[0]}))
				continue
			}
			if !a.tmpl.Compatible(b.tmpl) {
				return nil, false, nil
			}
			for c := range a.tmpl.Columns {
				conds = append(conds, sql.Bin("=",
					&sql.ColumnRef{Table: a.alias, Name: a.tmpl.Columns[c]},
					&sql.ColumnRef{Table: b.alias, Name: b.tmpl.Columns[c]}))
			}
		}
	}

	stmt := sql.NewSelect()
	for i, m := range combo {
		stmt.From = append(stmt.From, &sql.TableRef{
			Table:    m.Source.Table,
			IsStream: m.Source.IsStream,
			Alias:    aliases[i],
		})
	}

	// Projection: one output per head variable.
	for _, h := range q.Head {
		os, ok := occs[h]
		if !ok {
			return nil, false, fmt.Errorf("mapping: head variable %s not bound by any atom", h)
		}
		o := os[0]
		stmt.Items = append(stmt.Items, sql.SelectItem{
			Expr:  renderTemplate(o.tmpl, o.alias),
			Alias: h,
		})
	}
	if len(stmt.Items) == 0 {
		// Boolean query: project a constant.
		stmt.Items = append(stmt.Items, sql.SelectItem{Expr: sql.Lit(relation.Int(1)), Alias: "one"})
	}
	stmt.Where = sql.AndAll(conds...)

	if !opts.KeepSelfJoins {
		removed := eliminateSelfJoins(stmt, combo, aliases)
		stats.SelfJoinsRemoved += removed
	}
	if opts.Prune {
		// Re-derive the (mapping, alias) pairing: self-join elimination
		// drops FROM items without updating our local slices.
		curCombo, curAliases := alignCombo(stmt, combo, aliases)
		if provablyEmpty(stmt, curCombo, curAliases, opts.Catalog) {
			stats.ConstraintPruned++
			return nil, false, nil
		}
		stats.FKJoinsRemoved += eliminateFKJoins(stmt, curCombo, curAliases)
	}
	return stmt, true, nil
}

// alignCombo pairs the statement's surviving FROM aliases back with
// their mappings.
func alignCombo(stmt *sql.SelectStmt, combo []Mapping, aliases []string) ([]Mapping, []string) {
	outM := make([]Mapping, 0, len(stmt.From))
	outA := make([]string, 0, len(stmt.From))
	for _, tr := range stmt.From {
		for i, a := range aliases {
			if a == tr.Alias {
				outM = append(outM, combo[i])
				outA = append(outA, a)
				break
			}
		}
	}
	return outM, outA
}

// filterCond translates one CQ filter into a SQL condition over the
// combination's aliases. Ground filters compare two literals; variable
// filters compare the variable's first occurrence (raw column for data
// values, rendered template for IRIs — the latter only for = and !=).
func filterCond(f cq.Filter, occs map[string][]occurrence) (sql.Expr, bool) {
	op := f.Op
	if op == "!=" {
		op = "<>"
	}
	if !f.Arg.IsVar {
		return sql.Bin(op, literalFor(f.Arg.Const), literalFor(f.Value)), true
	}
	os, ok := occs[f.Arg.Var]
	if !ok {
		return nil, false
	}
	o := os[0]
	if o.data || o.tmpl.IsRawColumn() {
		return sql.Bin(op,
			&sql.ColumnRef{Table: o.alias, Name: o.tmpl.Columns[0]},
			literalFor(f.Value)), true
	}
	if op != "=" && op != "<>" {
		return nil, false // ordering over IRIs is not meaningful
	}
	return sql.Bin(op, renderTemplate(o.tmpl, o.alias), literalFor(f.Value)), true
}

func literalFor(t rdf.Term) sql.Expr {
	switch t.Datatype {
	case rdf.XSDInteger:
		if v, err := t.Integer(); err == nil {
			return sql.Lit(relation.Int(v))
		}
	case rdf.XSDDouble, rdf.XSDDecimal:
		if v, err := t.Float(); err == nil {
			return sql.Lit(relation.Float(v))
		}
	case rdf.XSDBoolean:
		if v, err := t.Bool(); err == nil {
			return sql.Lit(relation.Bool_(v))
		}
	}
	return stringLit(t.Value)
}

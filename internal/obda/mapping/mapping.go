package mapping

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/sql"
)

// Mapping is one GAV mapping: it populates an ontological term (class or
// property) from a source query.
//
// Class mapping:    Pred(Subject(~x)) <- Source
// Property mapping: Pred(Subject(~x), Object(~x)) <- Source
type Mapping struct {
	// ID names the mapping for diagnostics.
	ID string
	// Pred is the ontological term IRI this mapping populates.
	Pred string
	// IsClass distinguishes class from property mappings.
	IsClass bool
	// Subject constructs the subject IRI from source columns.
	Subject Template
	// Object constructs the object for property mappings: an IRI template
	// for object properties, a raw column ({col}) for data properties.
	Object Template
	// ObjectIsData marks data-property mappings (raw literal object).
	ObjectIsData bool

	// Source is the table or stream the mapping reads. Sources are
	// "simple" selects: one table/stream with an optional WHERE and a
	// plain projection, which is what BootOX emits and what keeps
	// unfolding flat. Complex sources are expressed by pre-declaring a
	// view in the catalog.
	Source SourceRef

	// KeyColumns is a unique key of the source (e.g. its primary key).
	// When two atoms of one unfolded query scan the same source joined on
	// the full key, the self-join is eliminated.
	KeyColumns []string

	// Exact marks an exact-predicate constraint (Hovland et al., "OBDA
	// Constraints for Effective Query Answering"): this mapping's source
	// yields *all* instances of Pred, so under set semantics every other
	// mapping for the same predicate is redundant and unfolding may skip
	// the union branches they would generate.
	Exact bool

	// FKs declares inclusion dependencies (foreign keys) of the source:
	// each row's Columns tuple appears in RefTable.RefColumns, and the
	// Columns are non-null. Unfolding uses them two ways: a join against
	// RefTable equated on the full FK whose target is keyed by RefColumns
	// is redundant and removed, and a branch whose FK columns are pinned
	// to constants absent from RefTable is provably empty and dropped at
	// registration time.
	FKs []ForeignKey
}

// ForeignKey is an inclusion dependency declared on a mapping's source.
type ForeignKey struct {
	Columns    []string // source columns (non-null by declaration)
	RefTable   string   // referenced static table
	RefColumns []string // referenced columns, same arity as Columns
}

// SourceRef is the relational source of a mapping.
type SourceRef struct {
	Table    string
	IsStream bool
	Where    sql.Expr // optional filter over the source's columns
}

// String renders the source.
func (s SourceRef) String() string {
	kind := ""
	if s.IsStream {
		kind = "STREAM "
	}
	out := kind + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Validate checks structural invariants.
func (m Mapping) Validate() error {
	if m.Pred == "" {
		return fmt.Errorf("mapping %s: empty predicate", m.ID)
	}
	if m.Source.Table == "" {
		return fmt.Errorf("mapping %s: empty source", m.ID)
	}
	if len(m.Subject.Columns) == 0 {
		return fmt.Errorf("mapping %s: empty subject template", m.ID)
	}
	if !m.IsClass {
		if len(m.Object.Columns) == 0 {
			return fmt.Errorf("mapping %s: property mapping without object template", m.ID)
		}
		if m.ObjectIsData && !m.Object.IsRawColumn() {
			return fmt.Errorf("mapping %s: data property object must be a raw column", m.ID)
		}
	}
	for _, fk := range m.FKs {
		if len(fk.Columns) == 0 || fk.RefTable == "" || len(fk.Columns) != len(fk.RefColumns) {
			return fmt.Errorf("mapping %s: malformed foreign key %v", m.ID, fk)
		}
	}
	return nil
}

// String renders the mapping in the paper's notation.
func (m Mapping) String() string {
	if m.IsClass {
		return fmt.Sprintf("%s(%s) <- %s", m.Pred, m.Subject, m.Source)
	}
	return fmt.Sprintf("%s(%s, %s) <- %s", m.Pred, m.Subject, m.Object, m.Source)
}

// Set is a collection of mappings indexed by predicate. The paper's
// modularity argument rests on this: each mapping covers one ontological
// term, so terms can be mapped independently and composed per query.
type Set struct {
	byPred map[string][]Mapping
	all    []Mapping
}

// NewSet builds a set from mappings, validating each.
func NewSet(ms ...Mapping) (*Set, error) {
	s := &Set{byPred: make(map[string][]Mapping)}
	for _, m := range ms {
		if err := s.Add(m); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNewSet panics on error; for statically-known mapping sets.
func MustNewSet(ms ...Mapping) *Set {
	s, err := NewSet(ms...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add validates and inserts one mapping.
func (s *Set) Add(m Mapping) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.ID == "" {
		m.ID = fmt.Sprintf("m%d", len(s.all))
	}
	s.byPred[m.Pred] = append(s.byPred[m.Pred], m)
	s.all = append(s.all, m)
	return nil
}

// ForPred returns the mappings for a predicate IRI.
func (s *Set) ForPred(pred string) []Mapping { return s.byPred[pred] }

// All returns every mapping.
func (s *Set) All() []Mapping { return s.all }

// Len returns the number of mappings.
func (s *Set) Len() int { return len(s.all) }

// Preds returns the mapped predicate IRIs, sorted.
func (s *Set) Preds() []string {
	out := make([]string, 0, len(s.byPred))
	for p := range s.byPred {
		out = append(out, p)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// qualifyExpr rewrites bare column references in a source WHERE clause to
// alias-qualified references.
func qualifyExpr(e sql.Expr, alias string) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.ColumnRef:
		return &sql.ColumnRef{Table: alias, Name: x.Name}
	case *sql.BinaryExpr:
		return sql.Bin(x.Op, qualifyExpr(x.Left, alias), qualifyExpr(x.Right, alias))
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: qualifyExpr(x.Expr, alias)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: qualifyExpr(x.Expr, alias), Negate: x.Negate}
	case *sql.FuncExpr:
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = qualifyExpr(a, alias)
		}
		return &sql.FuncExpr{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sql.InExpr:
		out := &sql.InExpr{Expr: qualifyExpr(x.Expr, alias), Negate: x.Negate}
		for _, i := range x.List {
			out.List = append(out.List, qualifyExpr(i, alias))
		}
		return out
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Else: qualifyExpr(x.Else, alias)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.CaseWhen{
				Cond: qualifyExpr(w.Cond, alias),
				Then: qualifyExpr(w.Then, alias),
			})
		}
		return out
	default:
		return e
	}
}

// renderTemplate converts a template over a source alias into a SQL
// expression: either a bare column or a '||' concatenation of literals
// and columns.
func renderTemplate(t Template, alias string) sql.Expr {
	if t.IsRawColumn() {
		return &sql.ColumnRef{Table: alias, Name: t.Columns[0]}
	}
	var out sql.Expr
	add := func(e sql.Expr) {
		if out == nil {
			out = e
			return
		}
		out = sql.Bin("||", out, e)
	}
	for i, c := range t.Columns {
		if t.Literals[i] != "" {
			add(stringLit(t.Literals[i]))
		}
		add(&sql.ColumnRef{Table: alias, Name: c})
	}
	if last := t.Literals[len(t.Literals)-1]; last != "" {
		add(stringLit(last))
	}
	return out
}

func stringLit(s string) sql.Expr {
	return sql.Lit(relation.String_(s))
}

// segmentLiteral converts an inverted template segment into a SQL
// literal: digit-only segments become integers so they compare equal to
// integer key columns.
func segmentLiteral(seg string) sql.Expr {
	allDigits := len(seg) > 0
	for i := 0; i < len(seg); i++ {
		if seg[i] < '0' || seg[i] > '9' {
			allDigits = false
			break
		}
	}
	if allDigits && len(seg) < 19 {
		var n int64
		for i := 0; i < len(seg); i++ {
			n = n*10 + int64(seg[i]-'0')
		}
		return sql.Lit(relation.Int(n))
	}
	return stringLit(seg)
}

package mapping

import (
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// This file implements the constraint-driven fleet pruning of Hovland
// et al., "OBDA Constraints for Effective Query Answering"
// (arXiv:1605.04263), adapted to GAV unfolding over a mixed
// static/stream catalog: declared exact-predicate and FK/inclusion
// constraints let unfolding drop provably-empty union branches and
// redundant joins before they ever execute.

// restrictExact narrows each atom's candidate mappings to the
// exact-predicate ones when any exist: an exact mapping's source holds
// all instances of the predicate, so under set semantics the branches
// the other mappings would generate are redundant. The number of
// combinations this removes is charged to ConstraintPruned.
func restrictExact(candidates [][]Mapping, stats *UnfoldStats) {
	full, restricted := 1, 1
	for i, ms := range candidates {
		var exact []Mapping
		for _, m := range ms {
			if m.Exact {
				exact = append(exact, m)
			}
		}
		full = capMul(full, len(ms))
		if len(exact) > 0 && len(exact) < len(ms) {
			candidates[i] = exact
		}
		restricted = capMul(restricted, len(candidates[i]))
	}
	stats.ConstraintPruned += full - restricted
}

// capMul multiplies with a saturation cap so pathological candidate
// sets cannot overflow the counter.
func capMul(a, b int) int {
	const lim = 1 << 30
	if a > 0 && b > lim/a {
		return lim
	}
	return a * b
}

// provablyEmpty reports whether a combination's WHERE clause can be
// shown to reject every row: either two conjuncts pin one column to
// different constants, or an FK column tuple is pinned to constants
// that the referenced static table does not contain (probed against
// the catalog at registration time).
func provablyEmpty(stmt *sql.SelectStmt, combo []Mapping, aliases []string, cat *relation.Catalog) bool {
	consts := map[string]relation.Value{} // "alias.col" -> pinned constant
	for _, c := range conjunctsOf(stmt.Where) {
		col, lit, ok := columnConstant(c)
		if !ok {
			continue
		}
		key := strings.ToLower(col.Table) + "." + strings.ToLower(col.Name)
		if prev, seen := consts[key]; seen {
			if cmp, comparable := relation.Compare(prev, lit); !comparable || cmp != 0 {
				return true // col = a AND col = b with a ≠ b
			}
			continue
		}
		consts[key] = lit
	}
	if cat == nil {
		return false
	}
	for i, m := range combo {
		for _, fk := range m.FKs {
			vals := make([]relation.Value, len(fk.Columns))
			covered := true
			for k, col := range fk.Columns {
				v, ok := consts[strings.ToLower(aliases[i])+"."+strings.ToLower(col)]
				if !ok {
					covered = false
					break
				}
				vals[k] = v
			}
			if !covered {
				continue
			}
			ref, err := cat.Get(fk.RefTable)
			if err != nil {
				continue
			}
			matches, _, err := ref.Lookup(fk.RefColumns, vals)
			if err == nil && len(matches) == 0 {
				// Every source row's FK tuple appears in the referenced
				// table; the pinned tuple does not, so the branch is empty.
				return true
			}
		}
	}
	return false
}

// columnConstant matches `alias.col = literal` (either orientation).
func columnConstant(e sql.Expr) (*sql.ColumnRef, relation.Value, bool) {
	be, ok := e.(*sql.BinaryExpr)
	if !ok || be.Op != "=" {
		return nil, relation.Null, false
	}
	l, r := be.Left, be.Right
	if _, isLit := l.(*sql.Literal); isLit {
		l, r = r, l
	}
	col, okCol := l.(*sql.ColumnRef)
	lit, okLit := r.(*sql.Literal)
	if !okCol || !okLit {
		return nil, relation.Null, false
	}
	return col, lit.Value, true
}

// eliminateFKJoins removes joins a declared foreign key proves
// redundant: when alias c (child) is equated with alias p (parent) on
// the child's full FK, the parent's source is the FK's referenced
// table, the referenced columns are the parent source's unique key, the
// parent carries no extra filter, and every other reference to the
// parent uses only the referenced columns — then the join pairs each
// child row with exactly one guaranteed-present parent row, so the
// parent is dropped and its column references rewritten to the child's
// FK columns. Returns the number of joins removed; the statement is
// modified in place.
func eliminateFKJoins(stmt *sql.SelectStmt, combo []Mapping, aliases []string) int {
	removed := 0
	for {
		merged := false
		for ci := 0; ci < len(stmt.From) && !merged; ci++ {
			for _, fk := range combo[ci].FKs {
				pi := fkParentIndex(stmt, combo, aliases, ci, fk)
				if pi < 0 {
					continue
				}
				// Rewrite parent.RefColumns[k] -> child.Columns[k], drop
				// the parent's FROM item, clean trivial equalities.
				repl := make(map[string]sql.ColumnRef, len(fk.Columns))
				for k := range fk.Columns {
					repl[strings.ToLower(fk.RefColumns[k])] = sql.ColumnRef{Table: aliases[ci], Name: fk.Columns[k]}
				}
				renameColRefsInStmt(stmt, aliases[pi], repl)
				stmt.From = append(stmt.From[:pi], stmt.From[pi+1:]...)
				combo = append(combo[:pi:pi], combo[pi+1:]...)
				aliases = append(aliases[:pi:pi], aliases[pi+1:]...)
				stmt.Where = pruneTrivialEqualities(stmt.Where)
				removed++
				merged = true
				break
			}
		}
		if !merged {
			return removed
		}
	}
}

// fkParentIndex finds a FROM alias the child's fk provably makes
// redundant, or -1.
func fkParentIndex(stmt *sql.SelectStmt, combo []Mapping, aliases []string, ci int, fk ForeignKey) int {
	for pi := range stmt.From {
		if pi == ci {
			continue
		}
		p := combo[pi]
		if !strings.EqualFold(p.Source.Table, fk.RefTable) || p.Source.IsStream {
			continue
		}
		// Uniqueness: the referenced columns must be the parent's key,
		// so the join multiplies cardinality by exactly one.
		if !equalStrings(p.KeyColumns, fk.RefColumns) {
			continue
		}
		// The parent must not filter (a WHERE could reject child rows the
		// inclusion guarantees exist in the unfiltered table).
		if p.Source.Where != nil {
			continue
		}
		// The join must equate the full FK.
		if !fkEquated(stmt.Where, aliases[ci], aliases[pi], fk) {
			continue
		}
		// Everything else said about the parent must be sayable about the
		// child: only referenced columns may appear.
		if !refsOnlyColumns(stmt, aliases[pi], fk.RefColumns) {
			continue
		}
		return pi
	}
	return -1
}

// fkEquated reports whether the predicate contains
// child.Columns[k] = parent.RefColumns[k] (either orientation) for
// every k.
func fkEquated(where sql.Expr, childAlias, parentAlias string, fk ForeignKey) bool {
	conj := conjunctsOf(where)
	for k := range fk.Columns {
		found := false
		for _, c := range conj {
			be, ok := c.(*sql.BinaryExpr)
			if !ok || be.Op != "=" {
				continue
			}
			l, lok := be.Left.(*sql.ColumnRef)
			r, rok := be.Right.(*sql.ColumnRef)
			if !lok || !rok {
				continue
			}
			if matchCol(l, childAlias, fk.Columns[k]) && matchCol(r, parentAlias, fk.RefColumns[k]) ||
				matchCol(r, childAlias, fk.Columns[k]) && matchCol(l, parentAlias, fk.RefColumns[k]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func matchCol(c *sql.ColumnRef, alias, name string) bool {
	return strings.EqualFold(c.Table, alias) && strings.EqualFold(c.Name, name)
}

// refsOnlyColumns reports whether every reference to alias in the
// statement's items and WHERE uses one of the allowed columns.
func refsOnlyColumns(stmt *sql.SelectStmt, alias string, allowed []string) bool {
	ok := true
	check := func(c *sql.ColumnRef) {
		if !strings.EqualFold(c.Table, alias) {
			return
		}
		for _, a := range allowed {
			if strings.EqualFold(c.Name, a) {
				return
			}
		}
		ok = false
	}
	for _, it := range stmt.Items {
		walkColRefs(it.Expr, check)
	}
	walkColRefs(stmt.Where, check)
	return ok
}

func walkColRefs(e sql.Expr, fn func(*sql.ColumnRef)) {
	switch x := e.(type) {
	case nil:
	case *sql.ColumnRef:
		fn(x)
	case *sql.BinaryExpr:
		walkColRefs(x.Left, fn)
		walkColRefs(x.Right, fn)
	case *sql.UnaryExpr:
		walkColRefs(x.Expr, fn)
	case *sql.IsNullExpr:
		walkColRefs(x.Expr, fn)
	case *sql.FuncExpr:
		for _, a := range x.Args {
			walkColRefs(a, fn)
		}
	case *sql.InExpr:
		walkColRefs(x.Expr, fn)
		for _, i := range x.List {
			walkColRefs(i, fn)
		}
	case *sql.CaseExpr:
		for _, w := range x.Whens {
			walkColRefs(w.Cond, fn)
			walkColRefs(w.Then, fn)
		}
		walkColRefs(x.Else, fn)
	}
}

// renameColRefsInStmt rewrites references alias.<key of repl> to the
// replacement column in the statement's items and WHERE clause.
func renameColRefsInStmt(stmt *sql.SelectStmt, alias string, repl map[string]sql.ColumnRef) {
	for i := range stmt.Items {
		stmt.Items[i].Expr = renameColRefs(stmt.Items[i].Expr, alias, repl)
	}
	stmt.Where = renameColRefs(stmt.Where, alias, repl)
}

func renameColRefs(e sql.Expr, alias string, repl map[string]sql.ColumnRef) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.ColumnRef:
		if strings.EqualFold(x.Table, alias) {
			if to, ok := repl[strings.ToLower(x.Name)]; ok {
				out := to
				return &out
			}
		}
		return x
	case *sql.BinaryExpr:
		return sql.Bin(x.Op, renameColRefs(x.Left, alias, repl), renameColRefs(x.Right, alias, repl))
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: renameColRefs(x.Expr, alias, repl)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: renameColRefs(x.Expr, alias, repl), Negate: x.Negate}
	case *sql.FuncExpr:
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameColRefs(a, alias, repl)
		}
		return &sql.FuncExpr{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sql.InExpr:
		out := &sql.InExpr{Expr: renameColRefs(x.Expr, alias, repl), Negate: x.Negate}
		for _, i := range x.List {
			out.List = append(out.List, renameColRefs(i, alias, repl))
		}
		return out
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Else: renameColRefs(x.Else, alias, repl)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.CaseWhen{
				Cond: renameColRefs(w.Cond, alias, repl),
				Then: renameColRefs(w.Then, alias, repl),
			})
		}
		return out
	default:
		return e
	}
}

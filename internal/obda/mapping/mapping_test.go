package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/obda/cq"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
)

func TestParseTemplate(t *testing.T) {
	tmpl, err := ParseTemplate("http://e/turbine/{tid}")
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Columns) != 1 || tmpl.Columns[0] != "tid" {
		t.Errorf("columns = %v", tmpl.Columns)
	}
	if tmpl.Literals[0] != "http://e/turbine/" || tmpl.Literals[1] != "" {
		t.Errorf("literals = %v", tmpl.Literals)
	}
	multi := MustParseTemplate("urn:{a}-{b}/x")
	if len(multi.Columns) != 2 || multi.Literals[2] != "/x" {
		t.Errorf("multi = %+v", multi)
	}
	for _, bad := range []string{"no-columns", "oops{", "{}"} {
		if _, err := ParseTemplate(bad); err == nil {
			t.Errorf("ParseTemplate(%q) accepted", bad)
		}
	}
}

func TestTemplateStringRoundTrip(t *testing.T) {
	for _, s := range []string{"http://e/t/{tid}", "{v}", "urn:{a}-{b}", "x{a}y{b}z"} {
		if got := MustParseTemplate(s).String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestTemplateCompatible(t *testing.T) {
	a := MustParseTemplate("http://e/t/{x}")
	b := MustParseTemplate("http://e/t/{y}")
	c := MustParseTemplate("http://e/s/{x}")
	if !a.Compatible(b) {
		t.Error("same-skeleton templates should be compatible")
	}
	if a.Compatible(c) {
		t.Error("different-skeleton templates should not be compatible")
	}
}

func TestTemplateInvertRender(t *testing.T) {
	tmpl := MustParseTemplate("http://e/turbine/{tid}")
	segs, ok := tmpl.Invert("http://e/turbine/42")
	if !ok || len(segs) != 1 || segs[0] != "42" {
		t.Fatalf("Invert = %v, %t", segs, ok)
	}
	if _, ok := tmpl.Invert("http://e/sensor/42"); ok {
		t.Error("wrong prefix inverted")
	}
	if _, ok := tmpl.Invert("http://e/turbine/"); ok {
		t.Error("empty segment inverted")
	}
	multi := MustParseTemplate("urn:{a}-{b}")
	segs, ok = multi.Invert("urn:12-34")
	if !ok || segs[0] != "12" || segs[1] != "34" {
		t.Fatalf("multi Invert = %v, %t", segs, ok)
	}
	out, err := multi.Render([]string{"12", "34"})
	if err != nil || out != "urn:12-34" {
		t.Fatalf("Render = %q, %v", out, err)
	}
	if _, err := multi.Render([]string{"12"}); err == nil {
		t.Error("wrong segment count accepted")
	}
}

// Property: render then invert is the identity for digit segments.
func TestTemplateRenderInvertProperty(t *testing.T) {
	tmpl := MustParseTemplate("http://e/{a}/s/{b}")
	f := func(a, b uint32) bool {
		s1 := itoa(uint64(a)%100000 + 1)
		s2 := itoa(uint64(b)%100000 + 1)
		rendered, err := tmpl.Render([]string{s1, s2})
		if err != nil {
			return false
		}
		segs, ok := tmpl.Invert(rendered)
		return ok && segs[0] == s1 && segs[1] == s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestMappingValidate(t *testing.T) {
	good := Mapping{
		Pred: "Turbine", IsClass: true,
		Subject: MustParseTemplate("http://e/t/{tid}"),
		Source:  SourceRef{Table: "turbine"},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Mapping{
		{IsClass: true, Subject: good.Subject, Source: good.Source}, // no pred
		{Pred: "T", IsClass: true, Subject: good.Subject},           // no source
		{Pred: "T", IsClass: true, Source: good.Source},             // no subject
		{Pred: "p", Subject: good.Subject, Source: good.Source},     // property without object
		{Pred: "p", Subject: good.Subject, Source: good.Source, ObjectIsData: true, Object: MustParseTemplate("x{v}")},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %v", i, m)
		}
	}
}

// siemensMappings builds a small two-source mapping set in the style of
// the paper's example: turbines in two schemas, sensors, measurements.
func siemensMappings(t *testing.T) *Set {
	t.Helper()
	tID := MustParseTemplate("http://e/turbine/{tid}")
	sID := MustParseTemplate("http://e/sensor/{sid}")
	set, err := NewSet(
		Mapping{
			ID: "turbineA", Pred: "Turbine", IsClass: true,
			Subject: tID, Source: SourceRef{Table: "turbines_a"},
			KeyColumns: []string{"tid"},
		},
		Mapping{
			ID: "turbineB", Pred: "Turbine", IsClass: true,
			Subject: tID, Source: SourceRef{Table: "turbines_b"},
			KeyColumns: []string{"tid"},
		},
		Mapping{
			ID: "model", Pred: "hasModel",
			Subject: tID, Object: MustParseTemplate("{model}"), ObjectIsData: true,
			Source:     SourceRef{Table: "turbines_a"},
			KeyColumns: []string{"tid"},
		},
		Mapping{
			ID: "sensor", Pred: "Sensor", IsClass: true,
			Subject: sID, Source: SourceRef{Table: "sensors"},
			KeyColumns: []string{"sid"},
		},
		Mapping{
			ID: "inAssembly", Pred: "inAssembly",
			Subject: sID, Object: tID,
			Source:     SourceRef{Table: "sensors"},
			KeyColumns: []string{"sid"},
		},
		Mapping{
			ID: "value", Pred: "hasValue",
			Subject: sID, Object: MustParseTemplate("{val}"), ObjectIsData: true,
			Source: SourceRef{Table: "msmt", IsStream: true},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSetIndexing(t *testing.T) {
	set := siemensMappings(t)
	if set.Len() != 6 {
		t.Fatalf("Len = %d", set.Len())
	}
	if len(set.ForPred("Turbine")) != 2 {
		t.Errorf("Turbine mappings = %d", len(set.ForPred("Turbine")))
	}
	if len(set.ForPred("nope")) != 0 {
		t.Error("unknown pred returned mappings")
	}
	preds := set.Preds()
	if len(preds) != 5 {
		t.Errorf("Preds = %v", preds)
	}
}

func TestUnfoldSingleClassAtom(t *testing.T) {
	set := siemensMappings(t)
	q := cq.New([]string{"x"}, cq.ClassAtom("Turbine", cq.V("x")))
	fleet, stats, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 2 {
		t.Fatalf("fleet = %d queries", len(fleet))
	}
	if stats.FleetSize != 2 || stats.CQs != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// Each statement scans one of the two sources and renders the IRI.
	texts := fleet[0].String() + " " + fleet[1].String()
	if !strings.Contains(texts, "turbines_a") || !strings.Contains(texts, "turbines_b") {
		t.Errorf("fleet sources: %s", texts)
	}
	if !strings.Contains(fleet[0].String(), "http://e/turbine/") {
		t.Errorf("IRI template not rendered: %s", fleet[0])
	}
}

func TestUnfoldJoinAcrossAtoms(t *testing.T) {
	set := siemensMappings(t)
	// q(s, t) :- Sensor(s), inAssembly(s, t).
	q := cq.New([]string{"s", "t"},
		cq.ClassAtom("Sensor", cq.V("s")),
		cq.PropAtom("inAssembly", cq.V("s"), cq.V("t")))
	fleet, stats, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{KeepSelfJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 {
		t.Fatalf("fleet = %v", fleet)
	}
	s := fleet[0].String()
	// Shared variable s joins the two source aliases on sid.
	if !strings.Contains(s, "m0.sid = m1.sid") && !strings.Contains(s, "m1.sid = m0.sid") {
		t.Errorf("join condition missing: %s", s)
	}
	if stats.SelfJoinsRemoved != 0 {
		t.Errorf("self-joins removed despite KeepSelfJoins: %+v", stats)
	}
}

func TestUnfoldSelfJoinElimination(t *testing.T) {
	set := siemensMappings(t)
	q := cq.New([]string{"s", "t"},
		cq.ClassAtom("Sensor", cq.V("s")),
		cq.PropAtom("inAssembly", cq.V("s"), cq.V("t")))
	fleet, stats, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SelfJoinsRemoved != 1 {
		t.Fatalf("SelfJoinsRemoved = %d; fleet: %v", stats.SelfJoinsRemoved, fleet[0])
	}
	s := fleet[0].String()
	if strings.Contains(s, "m1.") {
		t.Errorf("alias m1 survived elimination: %s", s)
	}
	if strings.Count(s, "sensors") != 1 {
		t.Errorf("source scanned more than once: %s", s)
	}
}

func TestUnfoldConstantInversion(t *testing.T) {
	set := siemensMappings(t)
	// q(t) :- inAssembly(<sensor/7>, t): the constant inverts into sid=7.
	q := cq.New([]string{"t"},
		cq.PropAtom("inAssembly", cq.C(rdf.NewIRI("http://e/sensor/7")), cq.V("t")))
	fleet, _, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 {
		t.Fatalf("fleet = %v", fleet)
	}
	if !strings.Contains(fleet[0].String(), "m0.sid = 7") {
		t.Errorf("constant not inverted: %s", fleet[0])
	}
}

func TestUnfoldConstantMismatchPrunes(t *testing.T) {
	set := siemensMappings(t)
	// Constant with the wrong IRI scheme cannot come from the template.
	q := cq.New([]string{"t"},
		cq.PropAtom("inAssembly", cq.C(rdf.NewIRI("http://other/thing/7")), cq.V("t")))
	fleet, stats, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 0 || stats.Pruned == 0 {
		t.Errorf("fleet = %v, stats = %+v", fleet, stats)
	}
}

func TestUnfoldDataLiteralConstant(t *testing.T) {
	set := siemensMappings(t)
	q := cq.New([]string{"s"},
		cq.PropAtom("hasModel", cq.V("s"), cq.C(rdf.NewLiteral("SGT-400"))))
	fleet, _, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 || !strings.Contains(fleet[0].String(), "m0.model = 'SGT-400'") {
		t.Errorf("fleet = %v", fleet)
	}
}

func TestUnfoldIncompatibleTemplatesPrune(t *testing.T) {
	// Turbine subject vs Sensor subject: joining them yields nothing.
	set := siemensMappings(t)
	q := cq.New([]string{"x"},
		cq.ClassAtom("Turbine", cq.V("x")),
		cq.ClassAtom("Sensor", cq.V("x")))
	fleet, stats, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 0 {
		t.Errorf("incompatible templates not pruned: %v", fleet)
	}
	if stats.Pruned != 2 { // 2 turbine mappings x 1 sensor mapping
		t.Errorf("stats = %+v", stats)
	}
}

func TestUnfoldUnmappedAtomDropsCQ(t *testing.T) {
	set := siemensMappings(t)
	q := cq.New([]string{"x"}, cq.ClassAtom("UnknownClass", cq.V("x")))
	fleet, stats, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 0 || stats.UnmappedAtoms != 1 {
		t.Errorf("fleet = %v, stats = %+v", fleet, stats)
	}
}

func TestUnfoldStreamSourceMarked(t *testing.T) {
	set := siemensMappings(t)
	q := cq.New([]string{"s", "v"},
		cq.PropAtom("hasValue", cq.V("s"), cq.V("v")))
	fleet, _, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 || !fleet[0].From[0].IsStream {
		t.Fatalf("stream flag lost: %v", fleet[0])
	}
}

func TestUnfoldSourceWhereQualified(t *testing.T) {
	set := MustNewSet(Mapping{
		Pred: "HotSensor", IsClass: true,
		Subject: MustParseTemplate("http://e/sensor/{sid}"),
		Source: SourceRef{
			Table: "sensors",
			Where: sql.Bin(">", sql.Col("temp"), sql.Lit(relation.Int(90))),
		},
	})
	q := cq.New([]string{"x"}, cq.ClassAtom("HotSensor", cq.V("x")))
	fleet, _, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fleet[0].String(), "m0.temp > 90") {
		t.Errorf("source WHERE not qualified: %s", fleet[0])
	}
}

func TestUnfoldCombinationCap(t *testing.T) {
	var ms []Mapping
	for i := 0; i < 30; i++ {
		ms = append(ms, Mapping{
			Pred: "C", IsClass: true,
			Subject: MustParseTemplate("http://e/c/{id}"),
			Source:  SourceRef{Table: "t"},
		})
	}
	set := MustNewSet(ms...)
	q := cq.New([]string{"x"},
		cq.ClassAtom("C", cq.V("x")))
	if _, _, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{MaxCombinations: 10}); err == nil {
		t.Error("combination cap not enforced")
	}
}

func TestUnfoldFleetParsesBack(t *testing.T) {
	set := siemensMappings(t)
	q := cq.New([]string{"s", "t", "v"},
		cq.ClassAtom("Sensor", cq.V("s")),
		cq.PropAtom("inAssembly", cq.V("s"), cq.V("t")),
		cq.PropAtom("hasValue", cq.V("s"), cq.V("v")))
	fleet, _, err := Unfold(cq.UCQ{q}, set, UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range fleet {
		if _, err := sql.Parse(stmt.String()); err != nil {
			t.Errorf("unfolded SQL does not reparse: %v\n%s", err, stmt)
		}
	}
}

package rewrite

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/obda/cq"
	"repro/internal/ontology"
)

// Property test for the correctness of PerfectRef: for TBoxes without
// existential heads (subclass, subproperty, inverse, domain, range —
// i.e. every axiom that derives *named* facts over *named* individuals),
// the certain answers equal the answers of the original query over the
// forward-chained saturation of the data. PerfectRef must therefore
// satisfy, for every such TBox T, dataset D, and query q:
//
//	eval(PerfectRef(q, T), D) == eval(q, saturate(D, T))
//
// Randomised over 200 (TBox, dataset, query) triples.

// fact is one ground atom.
type fact struct {
	pred string
	args [2]string // args[1] == "" for class facts
}

func (f fact) class() bool { return f.args[1] == "" }

// saturate forward-chains the named-head axioms to a fixpoint.
func saturate(facts map[fact]bool, t *ontology.TBox) map[fact]bool {
	out := map[fact]bool{}
	for f := range facts {
		out[f] = true
	}
	for changed := true; changed; {
		changed = false
		add := func(f fact) {
			if !out[f] {
				out[f] = true
				changed = true
			}
		}
		for f := range out {
			if f.class() {
				// A ⊑ B over named concepts.
				for _, ci := range t.ConceptInclusions() {
					if ci.Sub.Kind == ontology.NamedConcept && ci.Sub.IRI == f.pred &&
						ci.Sup.Kind == ontology.NamedConcept {
						add(fact{pred: ci.Sup.IRI, args: [2]string{f.args[0], ""}})
					}
				}
				continue
			}
			// Role inclusions (with polarity).
			for _, ri := range t.RoleInclusions() {
				if ri.Sub.IRI != f.pred {
					continue
				}
				x, y := f.args[0], f.args[1]
				if ri.Sub.Inverse {
					x, y = y, x
				}
				if ri.Sup.Inverse {
					x, y = y, x
				}
				add(fact{pred: ri.Sup.IRI, args: [2]string{x, y}})
			}
			// Domain/range: ∃P ⊑ C and ∃P⁻ ⊑ C with named C.
			for _, ci := range t.ConceptInclusions() {
				if ci.Sub.Kind != ontology.ExistsConcept || ci.Sup.Kind != ontology.NamedConcept {
					continue
				}
				if ci.Sub.Role.IRI != f.pred {
					continue
				}
				ind := f.args[0]
				if ci.Sub.Role.Inverse {
					ind = f.args[1]
				}
				add(fact{pred: ci.Sup.IRI, args: [2]string{ind, ""}})
			}
		}
	}
	return out
}

// evalCQ enumerates the answers of a CQ over ground facts by backtracking.
func evalCQ(q cq.CQ, facts map[fact]bool) map[string]bool {
	var factList []fact
	for f := range facts {
		factList = append(factList, f)
	}
	answers := map[string]bool{}
	var rec func(i int, binding map[string]string)
	rec = func(i int, binding map[string]string) {
		if i == len(q.Body) {
			parts := make([]string, len(q.Head))
			for j, h := range q.Head {
				parts[j] = binding[h]
			}
			answers[strings.Join(parts, "|")] = true
			return
		}
		atom := q.Body[i]
		for _, f := range factList {
			if f.pred != atom.Pred || f.class() != atom.IsClass() {
				continue
			}
			ext := map[string]string{}
			for k, v := range binding {
				ext[k] = v
			}
			ok := true
			for p, arg := range atom.Args {
				want := f.args[p]
				if !arg.IsVar {
					if arg.Const.Value != want {
						ok = false
					}
					continue
				}
				if cur, bound := ext[arg.Var]; bound {
					if cur != want {
						ok = false
					}
					continue
				}
				ext[arg.Var] = want
			}
			if ok {
				rec(i+1, ext)
			}
		}
	}
	rec(0, map[string]string{})
	return answers
}

func evalUCQ(u cq.UCQ, facts map[fact]bool) map[string]bool {
	out := map[string]bool{}
	for _, q := range u {
		for a := range evalCQ(q, facts) {
			out[a] = true
		}
	}
	return out
}

// randomTBox builds a TBox over small vocabularies with named-head
// axioms only.
func randomTBox(rng *rand.Rand, classes, props []string) *ontology.TBox {
	t := ontology.New()
	nAxioms := 3 + rng.Intn(6)
	for i := 0; i < nAxioms; i++ {
		switch rng.Intn(4) {
		case 0: // subclass
			t.AddConceptInclusion(
				ontology.Named(classes[rng.Intn(len(classes))]),
				ontology.Named(classes[rng.Intn(len(classes))]))
		case 1: // subproperty, random polarity
			sub := ontology.NewRole(props[rng.Intn(len(props))])
			sup := ontology.NewRole(props[rng.Intn(len(props))])
			if rng.Intn(2) == 0 {
				sub = sub.Inv()
			}
			if rng.Intn(2) == 0 {
				sup = sup.Inv()
			}
			t.AddRoleInclusion(sub, sup)
		case 2: // domain
			t.AddDomain(props[rng.Intn(len(props))], ontology.Named(classes[rng.Intn(len(classes))]))
		case 3: // range
			t.AddRange(props[rng.Intn(len(props))], ontology.Named(classes[rng.Intn(len(classes))]))
		}
	}
	return t
}

func randomFacts(rng *rand.Rand, classes, props, inds []string) map[fact]bool {
	facts := map[fact]bool{}
	n := 4 + rng.Intn(10)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			facts[fact{pred: classes[rng.Intn(len(classes))],
				args: [2]string{inds[rng.Intn(len(inds))], ""}}] = true
		} else {
			facts[fact{pred: props[rng.Intn(len(props))],
				args: [2]string{inds[rng.Intn(len(inds))], inds[rng.Intn(len(inds))]}}] = true
		}
	}
	return facts
}

// randomQuery builds a connected 1–3 atom CQ.
func randomQuery(rng *rand.Rand, classes, props []string) cq.CQ {
	vars := []string{"x", "y", "z"}
	nAtoms := 1 + rng.Intn(3)
	var body []cq.Atom
	for i := 0; i < nAtoms; i++ {
		if rng.Intn(2) == 0 {
			body = append(body, cq.ClassAtom(classes[rng.Intn(len(classes))],
				cq.V(vars[rng.Intn(2)])))
		} else {
			body = append(body, cq.PropAtom(props[rng.Intn(len(props))],
				cq.V(vars[rng.Intn(2)]), cq.V(vars[rng.Intn(3)])))
		}
	}
	// Head: the variables that occur, possibly a subset (projection).
	occurring := map[string]bool{}
	for _, a := range body {
		for _, arg := range a.Args {
			occurring[arg.Var] = true
		}
	}
	var head []string
	for _, v := range vars {
		if occurring[v] && rng.Intn(3) > 0 {
			head = append(head, v)
		}
	}
	if len(head) == 0 {
		for _, v := range vars {
			if occurring[v] {
				head = append(head, v)
				break
			}
		}
	}
	return cq.New(head, body...)
}

func TestPerfectRefMatchesSaturation(t *testing.T) {
	classes := []string{"A", "B", "C"}
	props := []string{"p", "q"}
	inds := []string{"i1", "i2", "i3", "i4"}
	rng := rand.New(rand.NewSource(2016))

	for trial := 0; trial < 200; trial++ {
		tb := randomTBox(rng, classes, props)
		facts := randomFacts(rng, classes, props, inds)
		q := randomQuery(rng, classes, props)
		if err := q.Validate(); err != nil {
			continue
		}
		u, _, err := PerfectRef(q, tb, Options{MaxQueries: 20000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := evalUCQ(u, facts)
		want := evalCQ(q, saturate(facts, tb))
		if !sameSet(got, want) {
			t.Fatalf("trial %d:\nquery: %v\ntbox: %v\nfacts: %v\nrewritten: %v\ngot:  %v\nwant: %v",
				trial, q, describeTBox(tb), factStrings(facts), u, keysOf(got), keysOf(want))
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func factStrings(fs map[fact]bool) []string {
	out := make([]string, 0, len(fs))
	for f := range fs {
		if f.class() {
			out = append(out, fmt.Sprintf("%s(%s)", f.pred, f.args[0]))
		} else {
			out = append(out, fmt.Sprintf("%s(%s,%s)", f.pred, f.args[0], f.args[1]))
		}
	}
	sort.Strings(out)
	return out
}

func describeTBox(t *ontology.TBox) []string {
	var out []string
	for _, ci := range t.ConceptInclusions() {
		out = append(out, ci.Sub.String()+" ⊑ "+ci.Sup.String())
	}
	for _, ri := range t.RoleInclusions() {
		out = append(out, ri.Sub.String()+" ⊑ "+ri.Sup.String())
	}
	return out
}

// Package rewrite implements the enrichment stage of OBSSDI query
// answering (challenge C2): PerfectRef-style rewriting of conjunctive
// queries under OWL 2 QL (DL-Lite_R) TBoxes. The result is a union of
// conjunctive queries whose evaluation over the raw data equals the
// certain answers of the original query over data plus ontology.
//
// The algorithm follows Calvanese et al. ("Tractable reasoning and
// efficient query answering in description logics: the DL-Lite family"),
// the same foundation used by Ontop [3] and by STARQL's enrichment,
// which the paper states is polynomial in the size of the ontology.
package rewrite

import (
	"fmt"

	"repro/internal/obda/cq"
	"repro/internal/ontology"
)

// Options tunes the rewriting engine.
type Options struct {
	// MaxQueries caps the size of the generated union as a safety valve
	// for adversarial TBoxes; 0 means no cap.
	MaxQueries int
	// SkipMinimize leaves subsumed disjuncts in the output; the
	// enrichment benchmarks use it to measure minimisation separately.
	SkipMinimize bool
}

// Stats reports what the rewriting did.
type Stats struct {
	Generated   int // queries generated before minimisation
	Result      int // queries after minimisation
	AtomSteps   int // axiom application steps
	ReduceSteps int // unification (reduce) steps
}

// PerfectRef rewrites q under tbox and returns the enriched UCQ together
// with statistics.
func PerfectRef(q cq.CQ, tbox *ontology.TBox, opts Options) (cq.UCQ, Stats, error) {
	if err := q.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("rewrite: %w", err)
	}
	var stats Stats

	seen := map[string]bool{q.Canonical(): true}
	result := cq.UCQ{q}
	frontier := []cq.CQ{q}
	fresh := 0
	newVar := func() cq.Arg {
		fresh++
		return cq.V(fmt.Sprintf("_pr%d", fresh))
	}

	push := func(nq cq.CQ) bool {
		nq.Body = cq.DedupAtoms(nq.Body)
		key := nq.Canonical()
		if seen[key] {
			return true
		}
		seen[key] = true
		result = append(result, nq)
		frontier = append(frontier, nq)
		if opts.MaxQueries > 0 && len(result) > opts.MaxQueries {
			return false
		}
		return true
	}

	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]

		// (a) axiom application on each atom.
		for i, atom := range cur.Body {
			for _, repl := range applicable(cur, i, atom, tbox, newVar) {
				stats.AtomSteps++
				nq := cur.Clone()
				nq.Body[i] = repl
				if !push(nq) {
					return nil, stats, fmt.Errorf("rewrite: union exceeded cap of %d queries", opts.MaxQueries)
				}
			}
		}
		// (b) reduce: unify pairs of atoms with the same predicate.
		for i := 0; i < len(cur.Body); i++ {
			for j := i + 1; j < len(cur.Body); j++ {
				if cur.Body[i].Pred != cur.Body[j].Pred || len(cur.Body[i].Args) != len(cur.Body[j].Args) {
					continue
				}
				if r, ok := cq.Reduce(cur, i, j); ok {
					stats.ReduceSteps++
					if !push(r) {
						return nil, stats, fmt.Errorf("rewrite: union exceeded cap of %d queries", opts.MaxQueries)
					}
				}
			}
		}
	}

	stats.Generated = len(result)
	if !opts.SkipMinimize {
		result = result.Minimize()
	}
	stats.Result = len(result)
	return result, stats, nil
}

// applicable returns the replacement atoms produced by applying every
// applicable TBox axiom to atom (the gr(g, I) function of PerfectRef).
func applicable(q cq.CQ, idx int, atom cq.Atom, tbox *ontology.TBox, newVar func() cq.Arg) []cq.Atom {
	var out []cq.Atom
	if atom.IsClass() {
		// Atom A(x): axioms I ⊑ A.
		x := atom.Args[0]
		for _, sub := range tbox.DirectSubConceptsOf(ontology.Named(atom.Pred)) {
			out = append(out, conceptToAtom(sub, x, newVar))
		}
		return out
	}

	// Atom P(x, y).
	x, y := atom.Args[0], atom.Args[1]
	// Role inclusions S ⊑ P rewrite the atom to S (respecting polarity).
	for _, sub := range tbox.DirectSubRolesOf(ontology.NewRole(atom.Pred)) {
		if sub.Inverse {
			out = append(out, cq.PropAtom(sub.IRI, y, x))
		} else {
			out = append(out, cq.PropAtom(sub.IRI, x, y))
		}
	}
	// Existential axioms apply only when the corresponding argument is
	// unbound.
	if q.Unbound(idx, 1) {
		// I ⊑ ∃P: replace P(x, _) by the atom for I on x.
		for _, sub := range tbox.DirectSubConceptsOf(ontology.Exists(ontology.NewRole(atom.Pred))) {
			out = append(out, conceptToAtom(sub, x, newVar))
		}
	}
	if q.Unbound(idx, 0) {
		// I ⊑ ∃P⁻: replace P(_, y) by the atom for I on y.
		for _, sub := range tbox.DirectSubConceptsOf(ontology.Exists(ontology.NewRole(atom.Pred).Inv())) {
			out = append(out, conceptToAtom(sub, y, newVar))
		}
	}
	return out
}

// conceptToAtom converts a basic concept applied to argument x into an
// atom: Named(B) → B(x), ∃S → S(x, fresh), ∃S⁻ → S(fresh, x).
func conceptToAtom(c ontology.Concept, x cq.Arg, newVar func() cq.Arg) cq.Atom {
	if c.Kind == ontology.NamedConcept {
		return cq.ClassAtom(c.IRI, x)
	}
	if c.Role.Inverse {
		return cq.PropAtom(c.Role.IRI, newVar(), x)
	}
	return cq.PropAtom(c.Role.IRI, x, newVar())
}

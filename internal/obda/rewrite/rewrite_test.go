package rewrite

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obda/cq"
	"repro/internal/ontology"
)

// contains reports whether the UCQ has a disjunct isomorphic to want.
func contains(u cq.UCQ, want cq.CQ) bool {
	key := want.Canonical()
	for _, q := range u {
		if q.Canonical() == key {
			return true
		}
	}
	return false
}

func TestSubclassRewriting(t *testing.T) {
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("GasTurbine"), ontology.Named("Turbine"))
	tb.AddConceptInclusion(ontology.Named("SteamTurbine"), ontology.Named("Turbine"))

	q := cq.New([]string{"x"}, cq.ClassAtom("Turbine", cq.V("x")))
	u, stats, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 3 {
		t.Fatalf("rewriting produced %d disjuncts: %v", len(u), u)
	}
	for _, c := range []string{"Turbine", "GasTurbine", "SteamTurbine"} {
		if !contains(u, cq.New([]string{"x"}, cq.ClassAtom(c, cq.V("x")))) {
			t.Errorf("missing disjunct for %s", c)
		}
	}
	if stats.Generated < 3 || stats.Result != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestTransitiveSubclassRewriting(t *testing.T) {
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("A"), ontology.Named("B"))
	tb.AddConceptInclusion(ontology.Named("B"), ontology.Named("C"))
	q := cq.New([]string{"x"}, cq.ClassAtom("C", cq.V("x")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(u, cq.New([]string{"x"}, cq.ClassAtom("A", cq.V("x")))) {
		t.Errorf("transitive rewriting missing A: %v", u)
	}
}

func TestDomainAxiomRewriting(t *testing.T) {
	// ∃inAssembly ⊑ Sensor: query Sensor(x) also reaches inAssembly(x,_).
	tb := ontology.New()
	tb.AddDomain("inAssembly", ontology.Named("Sensor"))
	q := cq.New([]string{"x"}, cq.ClassAtom("Sensor", cq.V("x")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := cq.New([]string{"x"}, cq.PropAtom("inAssembly", cq.V("x"), cq.V("f")))
	if !contains(u, want) {
		t.Errorf("domain rewriting missing: %v", u)
	}
}

func TestRangeAxiomRewriting(t *testing.T) {
	tb := ontology.New()
	tb.AddRange("inAssembly", ontology.Named("Assembly"))
	q := cq.New([]string{"x"}, cq.ClassAtom("Assembly", cq.V("x")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := cq.New([]string{"x"}, cq.PropAtom("inAssembly", cq.V("f"), cq.V("x")))
	if !contains(u, want) {
		t.Errorf("range rewriting missing: %v", u)
	}
}

func TestExistentialAppliesOnlyWhenUnbound(t *testing.T) {
	// Turbine ⊑ ∃hasPart. Query hasPart(x,y) with y in the head must NOT
	// rewrite to Turbine(x); with y unbound it must.
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("Turbine"), ontology.Exists(ontology.NewRole("hasPart")))

	bound := cq.New([]string{"x", "y"}, cq.PropAtom("hasPart", cq.V("x"), cq.V("y")))
	u, _, err := PerfectRef(bound, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if contains(u, cq.New([]string{"x", "y"}, cq.ClassAtom("Turbine", cq.V("x")))) {
		t.Error("existential axiom applied to bound variable")
	}
	if len(u) != 1 {
		t.Errorf("bound query should not rewrite: %v", u)
	}

	unbound := cq.New([]string{"x"}, cq.PropAtom("hasPart", cq.V("x"), cq.V("y")))
	u2, _, err := PerfectRef(unbound, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(u2, cq.New([]string{"x"}, cq.ClassAtom("Turbine", cq.V("x")))) {
		t.Errorf("existential axiom not applied: %v", u2)
	}
}

func TestInverseExistentialRewriting(t *testing.T) {
	// Assembly ⊑ ∃inAssembly⁻ : query inAssembly(x, y) with x unbound
	// rewrites to Assembly(y).
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("Assembly"),
		ontology.Exists(ontology.NewRole("inAssembly").Inv()))
	q := cq.New([]string{"y"}, cq.PropAtom("inAssembly", cq.V("x"), cq.V("y")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(u, cq.New([]string{"y"}, cq.ClassAtom("Assembly", cq.V("y")))) {
		t.Errorf("inverse existential missing: %v", u)
	}
}

func TestRoleInclusionRewriting(t *testing.T) {
	tb := ontology.New()
	tb.AddRoleInclusion(ontology.NewRole("feeds"), ontology.NewRole("connectedTo"))
	q := cq.New([]string{"x", "y"}, cq.PropAtom("connectedTo", cq.V("x"), cq.V("y")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(u, cq.New([]string{"x", "y"}, cq.PropAtom("feeds", cq.V("x"), cq.V("y")))) {
		t.Errorf("role inclusion missing: %v", u)
	}
}

func TestInversePropertyRewriting(t *testing.T) {
	// hasPart ≡ partOf⁻: query hasPart(x,y) rewrites to partOf(y,x).
	tb := ontology.New()
	tb.AddInverse("hasPart", "partOf")
	q := cq.New([]string{"x", "y"}, cq.PropAtom("hasPart", cq.V("x"), cq.V("y")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(u, cq.New([]string{"x", "y"}, cq.PropAtom("partOf", cq.V("y"), cq.V("x")))) {
		t.Errorf("inverse rewriting missing:\n%v", u)
	}
}

func TestReduceEnablesExistential(t *testing.T) {
	// Classic PerfectRef example: the reduce step merges two atoms making
	// a variable unbound, which then enables an existential axiom.
	// TBox: A ⊑ ∃P. Query: q(x) :- P(x,y), P(x,z).
	// Reduce unifies the atoms -> q(x) :- P(x,y) with y unbound -> A(x).
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("A"), ontology.Exists(ontology.NewRole("P")))
	q := cq.New([]string{"x"},
		cq.PropAtom("P", cq.V("x"), cq.V("y")),
		cq.PropAtom("P", cq.V("x"), cq.V("z")))
	u, stats, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(u, cq.New([]string{"x"}, cq.ClassAtom("A", cq.V("x")))) {
		t.Errorf("reduce+existential rewriting missing:\n%v", u)
	}
	if stats.ReduceSteps == 0 {
		t.Error("no reduce steps recorded")
	}
}

func TestMultiAtomQueryRewriting(t *testing.T) {
	// Figure 1 shape: q(a, s) :- Assembly(a), Sensor(s), inAssembly(a, s).
	// With MonitoredAssembly ⊑ Assembly and TempSensor ⊑ Sensor the union
	// must contain all 4 combinations.
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("MonitoredAssembly"), ontology.Named("Assembly"))
	tb.AddConceptInclusion(ontology.Named("TempSensor"), ontology.Named("Sensor"))
	q := cq.New([]string{"a", "s"},
		cq.ClassAtom("Assembly", cq.V("a")),
		cq.ClassAtom("Sensor", cq.V("s")),
		cq.PropAtom("inAssembly", cq.V("a"), cq.V("s")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 4 {
		t.Fatalf("expected 4 disjuncts, got %d:\n%v", len(u), u)
	}
}

func TestMinimizePrunesSubsumed(t *testing.T) {
	// A ⊑ B and query q(x) :- B(x), A(x): rewriting generates
	// q(x) :- A(x) (after applying axiom to B and reducing), which
	// subsumes the original two-atom disjunct... and in the minimised
	// output no disjunct strictly contains another.
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named("A"), ontology.Named("B"))
	q := cq.New([]string{"x"}, cq.ClassAtom("B", cq.V("x")), cq.ClassAtom("A", cq.V("x")))
	u, _, err := PerfectRef(q, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, qi := range u {
		for j, qj := range u {
			if i != j && cq.ContainedIn(qi, qj) && !cq.ContainedIn(qj, qi) {
				t.Errorf("disjunct %v subsumed by %v survived minimisation", qi, qj)
			}
		}
	}
}

func TestMaxQueriesCap(t *testing.T) {
	tb := ontology.New()
	// 20 subclasses of C explode the union past the cap.
	for i := 0; i < 20; i++ {
		tb.AddConceptInclusion(ontology.Named(fmt.Sprintf("S%d", i)), ontology.Named("C"))
	}
	q := cq.New([]string{"x"}, cq.ClassAtom("C", cq.V("x")))
	if _, _, err := PerfectRef(q, tb, Options{MaxQueries: 5}); err == nil {
		t.Error("cap not enforced")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	tb := ontology.New()
	if _, _, err := PerfectRef(cq.New([]string{"x"}), tb, Options{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestRewritingPolynomialGrowth(t *testing.T) {
	// A chain hierarchy of depth n yields n+1 disjuncts, not 2^n.
	for _, n := range []int{4, 8, 16} {
		tb := ontology.New()
		for i := 0; i < n; i++ {
			tb.AddConceptInclusion(
				ontology.Named(fmt.Sprintf("L%d", i+1)),
				ontology.Named(fmt.Sprintf("L%d", i)))
		}
		q := cq.New([]string{"x"}, cq.ClassAtom("L0", cq.V("x")))
		u, _, err := PerfectRef(q, tb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(u) != n+1 {
			t.Errorf("depth %d: %d disjuncts, want %d", n, len(u), n+1)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Generated: 5, Result: 3}
	if !strings.Contains(fmt.Sprintf("%+v", s), "Generated:5") {
		t.Skip("formatting detail")
	}
}

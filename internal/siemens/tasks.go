package siemens

import (
	"fmt"
	"strings"
)

// Task is one diagnostic task of the demo catalog: a named STARQL query.
type Task struct {
	ID    string
	Title string
	Query string // STARQL text
}

// monotonicAggregate is the Figure 1 macro, shared by the ramp tasks.
const monotonicAggregate = `
CREATE AGGREGATE MONOTONIC:HAVING ($var, $attr) AS
HAVING EXISTS ?k IN SEQ: GRAPH ?k { $var sie:showsFailure } AND
FORALL ?i < ?j IN seq, ?x, ?y:
IF ( ?i, ?j < ?k AND GRAPH ?i {$var $attr ?x} AND GRAPH ?j {$var $attr ?y}) THEN ?x<=?y
`

// taskTemplate renders one catalog entry.
func taskTemplate(id, title, construct, stream, window, slide, where, having, extra string) Task {
	q := fmt.Sprintf(`PREFIX sie: <%s>
PREFIX out: <%s>

CREATE STREAM %s AS
CONSTRUCT GRAPH NOW { %s }
FROM STREAM %s [NOW-"%s", NOW]->"%s",
STATIC DATA <%sstatic>,
ONTOLOGY <%stbox>
USING PULSE WITH START = "00:00:00Z", FREQUENCY = "%s"
WHERE { %s }
SEQUENCE BY StdSeq AS seq
HAVING %s
%s`, NS, OutNS, id, construct, stream, window, slide, DataNS, DataNS, slide, where, having, extra)
	return Task{ID: id, Title: title, Query: q}
}

// Catalog returns the 20 diagnostic tasks of the demo (paper §3: "we
// selected 20 diagnostic tasks typical for Siemens Energy service
// centres and expressed these tasks in STARQL"). The tasks combine the
// five sensor kinds with four diagnostic conditions; the Pearson task is
// the paper's worked example ("calculate the Pearson correlation
// coefficient between turbine stream data").
func Catalog() []Task {
	kinds := []struct {
		class string
		label string
	}{
		{"TemperatureSensor", "temperature"},
		{"PressureSensor", "pressure"},
		{"VibrationSensor", "vibration"},
		{"FlowSensor", "flow"},
		{"SpeedSensor", "speed"},
	}
	thresholds := map[string]string{
		"temperature": "105", "pressure": "7.5", "vibration": "0.75",
		"flow": "180", "speed": "4500",
	}
	var tasks []Task
	for i, k := range kinds {
		// 1) Figure 1: monotonic increase before a failure.
		tasks = append(tasks, taskTemplate(
			fmt.Sprintf("T%02d_mon_%s", i*4+1, k.label),
			fmt.Sprintf("monotonic %s increase before failure", k.label),
			"?s rdf:type out:MonInc",
			"msmt_a", "PT10S", "PT1S",
			fmt.Sprintf("?a a sie:Assembly. ?s a sie:%s. ?a sie:inAssembly ?s.", k.class),
			"MONOTONIC.HAVING(?s, sie:hasValue)",
			monotonicAggregate,
		))
		// 2) Threshold exceedance.
		tasks = append(tasks, taskTemplate(
			fmt.Sprintf("T%02d_thr_%s", i*4+2, k.label),
			fmt.Sprintf("%s above alarm threshold", k.label),
			"?s rdf:type out:Alarm",
			"msmt_a", "PT5S", "PT1S",
			fmt.Sprintf("?s a sie:%s.", k.class),
			fmt.Sprintf("THRESHOLD.ABOVE(?s, sie:hasValue, %s)", thresholds[k.label]),
			"",
		))
		// 3) Rising trend over the window.
		tasks = append(tasks, taskTemplate(
			fmt.Sprintf("T%02d_trend_%s", i*4+3, k.label),
			fmt.Sprintf("rising %s trend", k.label),
			"?s rdf:type out:Rising",
			"msmt_a", "PT30S", "PT5S",
			fmt.Sprintf("?s a sie:%s.", k.class),
			"TREND.INCREASE(?s, sie:hasValue)",
			"",
		))
		// 4) Pearson correlation between same-assembly sensor pairs.
		tasks = append(tasks, taskTemplate(
			fmt.Sprintf("T%02d_corr_%s", i*4+4, k.label),
			fmt.Sprintf("correlated %s sensor pairs", k.label),
			"?s rdf:type out:Correlated",
			"msmt_a", "PT20S", "PT5S",
			fmt.Sprintf("?a a sie:Assembly. ?s a sie:%s. ?t a sie:%s. ?a sie:inAssembly ?s. ?a sie:inAssembly ?t.",
				k.class, k.class),
			"PEARSON.CORRELATION(?s, ?t, sie:hasValue, 0.9)",
			"",
		))
	}
	return tasks
}

// TestSets returns the 10 preconfigured query sets of demo scenario S2:
// growing subsets of the catalog (set i holds the first 2i tasks), so
// set 10 is the full catalog.
func TestSets() [][]Task {
	catalog := Catalog()
	sets := make([][]Task, 10)
	for i := 1; i <= 10; i++ {
		n := 2 * i
		if n > len(catalog) {
			n = len(catalog)
		}
		sets[i-1] = catalog[:n]
	}
	return sets
}

// TaskByID finds a catalog task.
func TaskByID(id string) (Task, bool) {
	for _, t := range Catalog() {
		if t.ID == id || strings.EqualFold(t.ID, id) {
			return t, true
		}
	}
	return Task{}, false
}

// Package siemens generates the demo workload of the paper: an
// anonymised turbine fleet in the style of Siemens Energy — 950 gas and
// steam turbines with >100,000 sensors by default — spread over two
// structurally different source schemas, a diagnostic ontology with
// hundreds of terms, the GAV mappings connecting them, measurement
// streams with plantable patterns (monotonic ramps ending in failures,
// correlated sensor pairs, threshold exceedances), the catalog of 20
// diagnostic tasks, and the 10 predefined test sets of demo scenario S2.
//
// The paper's real data is proprietary; this generator substitutes a
// deterministic synthetic fleet that preserves what the experiments
// exercise: schema heterogeneity (the reason OBDA helps) and detectable
// temporal patterns (so diagnostic answers have ground truth).
package siemens

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/stream"
)

// Namespaces of the generated deployment.
const (
	NS     = "http://siemens.com/ontology#"
	DataNS = "http://siemens.com/data/"
	OutNS  = "http://siemens.com/out#"
)

// SensorKinds are the sensor categories of the fleet.
var SensorKinds = []string{"temperature", "pressure", "vibration", "flow", "speed"}

// Config sizes the fleet. The zero value is unusable; use DefaultConfig
// or SmallConfig.
type Config struct {
	Turbines             int
	SensorsPerTurbine    int
	AssembliesPerTurbine int
	// SourceASplit is the fraction of turbines stored in source A's
	// schema; the rest live in source B (schema heterogeneity).
	SourceASplit float64
	Seed         int64
}

// DefaultConfig reproduces the paper's fleet: 950 turbines with ~110
// sensors each (>100,000 sensors).
func DefaultConfig() Config {
	return Config{
		Turbines:             950,
		SensorsPerTurbine:    110,
		AssembliesPerTurbine: 5,
		SourceASplit:         0.6,
		Seed:                 1,
	}
}

// SmallConfig is a laptop-test-sized fleet.
func SmallConfig() Config {
	return Config{
		Turbines:             10,
		SensorsPerTurbine:    8,
		AssembliesPerTurbine: 2,
		SourceASplit:         0.5,
		Seed:                 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Turbines <= 0 || c.SensorsPerTurbine <= 0 || c.AssembliesPerTurbine <= 0 {
		return fmt.Errorf("siemens: fleet sizes must be positive")
	}
	if c.SourceASplit < 0 || c.SourceASplit > 1 {
		return fmt.Errorf("siemens: SourceASplit must be in [0,1]")
	}
	return nil
}

// Generator builds all workload artefacts deterministically from the
// configuration.
type Generator struct {
	cfg Config
}

// New returns a generator; it fails on invalid configurations.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// SensorCount returns the total number of sensors in the fleet.
func (g *Generator) SensorCount() int { return g.cfg.Turbines * g.cfg.SensorsPerTurbine }

// sourceAOf reports whether a turbine lives in source A.
func (g *Generator) sourceAOf(tid int) bool {
	return tid < int(float64(g.cfg.Turbines)*g.cfg.SourceASplit)
}

// sensorID computes the global sensor id of sensor k on turbine tid.
func (g *Generator) sensorID(tid, k int) int64 {
	return int64(tid)*int64(g.cfg.SensorsPerTurbine) + int64(k) + 1
}

// SensorKind returns the kind of a sensor id (round-robin per turbine).
func (g *Generator) SensorKind(sid int64) string {
	return SensorKinds[int((sid-1)%int64(len(SensorKinds)))]
}

// SensorIRI returns the instance IRI of a sensor.
func SensorIRI(sid int64) string { return fmt.Sprintf("%ssensor/%d", DataNS, sid) }

// TurbineIRI returns the instance IRI of a turbine.
func TurbineIRI(tid int) string { return fmt.Sprintf("%sturbine/%d", DataNS, tid) }

// AssemblyIRI returns the instance IRI of an assembly.
func AssemblyIRI(aid int64) string { return fmt.Sprintf("%sassembly/%d", DataNS, aid) }

// StaticCatalog materialises the static databases of both sources:
//
//	source A: a_turbines(tid, model, country, year),
//	          a_assemblies(aid, tid, kind),
//	          a_sensors(sid, aid, kind)
//	source B: b_units(unit_id, unit_model, site),
//	          b_parts(part_id, unit_id, part_kind),
//	          b_channels(chan_id, part_id, chan_type)
//
// plus shared service_events(eid, tid, day, kind) history and
// weather(station, day, temp_c).
func (g *Generator) StaticCatalog() (*relation.Catalog, error) {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	cat := relation.NewCatalog()

	aTurbines, err := cat.Create("a_turbines", relation.NewSchema(
		relation.Col("tid", relation.TInt),
		relation.Col("model", relation.TString),
		relation.Col("country", relation.TString),
		relation.Col("year", relation.TInt),
	))
	if err != nil {
		return nil, err
	}
	aAssemblies, err := cat.Create("a_assemblies", relation.NewSchema(
		relation.Col("aid", relation.TInt),
		relation.Col("tid", relation.TInt),
		relation.Col("kind", relation.TString),
	))
	if err != nil {
		return nil, err
	}
	aSensors, err := cat.Create("a_sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("aid", relation.TInt),
		relation.Col("kind", relation.TString),
	))
	if err != nil {
		return nil, err
	}
	bUnits, err := cat.Create("b_units", relation.NewSchema(
		relation.Col("unit_id", relation.TInt),
		relation.Col("unit_model", relation.TString),
		relation.Col("site", relation.TString),
	))
	if err != nil {
		return nil, err
	}
	bParts, err := cat.Create("b_parts", relation.NewSchema(
		relation.Col("part_id", relation.TInt),
		relation.Col("unit_id", relation.TInt),
		relation.Col("part_kind", relation.TString),
	))
	if err != nil {
		return nil, err
	}
	bChannels, err := cat.Create("b_channels", relation.NewSchema(
		relation.Col("chan_id", relation.TInt),
		relation.Col("part_id", relation.TInt),
		relation.Col("chan_type", relation.TString),
	))
	if err != nil {
		return nil, err
	}
	service, err := cat.Create("service_events", relation.NewSchema(
		relation.Col("eid", relation.TInt),
		relation.Col("tid", relation.TInt),
		relation.Col("day", relation.TInt),
		relation.Col("kind", relation.TString),
	))
	if err != nil {
		return nil, err
	}
	weather, err := cat.Create("weather", relation.NewSchema(
		relation.Col("station", relation.TString),
		relation.Col("day", relation.TInt),
		relation.Col("temp_c", relation.TFloat),
	))
	if err != nil {
		return nil, err
	}

	models := []string{"SGT-100", "SGT-400", "SGT-800", "SST-600", "SST-5000"}
	countries := []string{"DE", "NO", "US", "BR", "IN", "CN"}
	assemblyKinds := []string{"burner", "rotor", "stator", "bearing", "exhaust", "cooling", "gearbox"}

	eid := int64(1)
	for tid := 0; tid < g.cfg.Turbines; tid++ {
		model := models[tid%len(models)]
		country := countries[tid%len(countries)]
		if g.sourceAOf(tid) {
			aTurbines.MustInsert(relation.Tuple{
				relation.Int(int64(tid)), relation.String_(model),
				relation.String_(country), relation.Int(int64(2002 + tid%10)),
			})
		} else {
			bUnits.MustInsert(relation.Tuple{
				relation.Int(int64(tid)), relation.String_(model),
				relation.String_("plant-" + country),
			})
		}
		// Assemblies.
		for a := 0; a < g.cfg.AssembliesPerTurbine; a++ {
			aid := int64(tid)*int64(g.cfg.AssembliesPerTurbine) + int64(a) + 1
			kind := assemblyKinds[int(aid)%len(assemblyKinds)]
			if g.sourceAOf(tid) {
				aAssemblies.MustInsert(relation.Tuple{
					relation.Int(aid), relation.Int(int64(tid)), relation.String_(kind),
				})
			} else {
				bParts.MustInsert(relation.Tuple{
					relation.Int(aid), relation.Int(int64(tid)), relation.String_(kind),
				})
			}
		}
		// Sensors spread over the turbine's assemblies.
		for k := 0; k < g.cfg.SensorsPerTurbine; k++ {
			sid := g.sensorID(tid, k)
			aid := int64(tid)*int64(g.cfg.AssembliesPerTurbine) + int64(k%g.cfg.AssembliesPerTurbine) + 1
			kind := g.SensorKind(sid)
			if g.sourceAOf(tid) {
				aSensors.MustInsert(relation.Tuple{
					relation.Int(sid), relation.Int(aid), relation.String_(kind),
				})
			} else {
				bChannels.MustInsert(relation.Tuple{
					relation.Int(sid), relation.Int(aid), relation.String_(kind),
				})
			}
		}
		// Sparse service history.
		if tid%7 == 0 {
			service.MustInsert(relation.Tuple{
				relation.Int(eid), relation.Int(int64(tid)),
				relation.Int(int64(rng.Intn(3650))), relation.String_("overhaul"),
			})
			eid++
		}
	}
	for day := 0; day < 30; day++ {
		for _, c := range countries {
			weather.MustInsert(relation.Tuple{
				relation.String_("st-" + c), relation.Int(int64(day)),
				relation.Float(10 + 15*math.Sin(float64(day)/5) + rng.Float64()*3),
			})
		}
	}
	return cat, nil
}

// StreamSchemas declares the two measurement streams: source A's
// msmt_a(sid, ts, val, fail) and source B's differently-shaped
// msmt_b(chan_nr, ts, reading, status).
func StreamSchemas() []stream.Schema {
	return []stream.Schema{
		{
			Name: "msmt_a",
			Tuple: relation.NewSchema(
				relation.Col("sid", relation.TInt),
				relation.Col("ts", relation.TTime),
				relation.Col("val", relation.TFloat),
				relation.Col("fail", relation.TInt),
			),
			TSCol: "ts",
		},
		{
			Name: "msmt_b",
			Tuple: relation.NewSchema(
				relation.Col("chan_nr", relation.TInt),
				relation.Col("ts", relation.TTime),
				relation.Col("reading", relation.TFloat),
				relation.Col("status", relation.TInt),
			),
			TSCol: "ts",
		},
	}
}

// TBox builds the Siemens diagnostic ontology: the appliance, assembly
// and sensor hierarchies, model-specific classes, and the measurement
// vocabulary — several hundred terms, as in [10].
func TBox() *ontology.TBox {
	tb := ontology.New()
	n := func(l string) ontology.Concept { return ontology.Named(NS + l) }

	// Appliance hierarchy.
	tb.AddConceptInclusion(n("Turbine"), n("PowerAppliance"))
	tb.AddConceptInclusion(n("Generator"), n("PowerAppliance"))
	tb.AddConceptInclusion(n("Compressor"), n("PowerAppliance"))
	tb.AddConceptInclusion(n("GasTurbine"), n("Turbine"))
	tb.AddConceptInclusion(n("SteamTurbine"), n("Turbine"))
	tb.AddDisjoint(n("GasTurbine"), n("SteamTurbine"))
	// Model-specific classes (SGT = gas, SST = steam), 40 variants each.
	for i := 0; i < 40; i++ {
		tb.AddConceptInclusion(n(fmt.Sprintf("SGT%dSeries", 100+i*25)), n("GasTurbine"))
		tb.AddConceptInclusion(n(fmt.Sprintf("SST%dSeries", 100+i*25)), n("SteamTurbine"))
	}

	// Assemblies.
	tb.AddConceptInclusion(n("Assembly"), n("Component"))
	for _, k := range []string{"Burner", "Rotor", "Stator", "Bearing", "Exhaust", "Cooling", "Gearbox"} {
		tb.AddConceptInclusion(n(k+"Assembly"), n("Assembly"))
	}

	// Sensor hierarchy: one subclass per kind plus placement variants.
	tb.AddConceptInclusion(n("Sensor"), n("MonitoringDevice"))
	for _, k := range []string{"Temperature", "Pressure", "Vibration", "Flow", "Speed"} {
		tb.AddConceptInclusion(n(k+"Sensor"), n("Sensor"))
		for _, pos := range []string{"Inlet", "Outlet", "Bearing", "Casing"} {
			tb.AddConceptInclusion(n(pos+k+"Sensor"), n(k+"Sensor"))
		}
	}

	// Properties.
	tb.AddDomain(NS+"inAssembly", n("Assembly"))
	tb.AddRange(NS+"inAssembly", n("Sensor"))
	tb.AddDomain(NS+"inTurbine", n("Assembly"))
	tb.AddRange(NS+"inTurbine", n("Turbine"))
	tb.AddInverse(NS+"hasPart", NS+"partOf")
	tb.DeclareDataProperty(NS + "hasValue")
	tb.AddDomain(NS+"hasValue", n("Sensor"))
	tb.DeclareDataProperty(NS + "showsFailure")
	tb.AddDomain(NS+"showsFailure", n("Sensor"))
	for _, dp := range []string{"hasModel", "hasSerialNo", "commissionedIn", "locatedIn", "hasKind"} {
		tb.DeclareDataProperty(NS + dp)
	}
	tb.SetLabel(NS+"Turbine", "power generating turbine")
	tb.SetLabel(NS+"hasValue", "measured value of a sensor")
	return tb
}

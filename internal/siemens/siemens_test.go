package siemens

import (
	"testing"

	"repro/internal/obda/cq"
	"repro/internal/obda/mapping"
	"repro/internal/obda/rewrite"
	"repro/internal/starql"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
	if err := (Config{Turbines: 1, SensorsPerTurbine: 1, AssembliesPerTurbine: 1, SourceASplit: 2}).Validate(); err == nil {
		t.Error("bad split accepted")
	}
}

func TestFleetScaleMatchesPaper(t *testing.T) {
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.Config().Turbines != 950 {
		t.Errorf("turbines = %d, paper says 950", g.Config().Turbines)
	}
	if g.SensorCount() <= 100_000 {
		t.Errorf("sensors = %d, paper says more than 100,000", g.SensorCount())
	}
}

func TestStaticCatalogHeterogeneous(t *testing.T) {
	g, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := g.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	// Both source schemas populated.
	aT, err := cat.Get("a_turbines")
	if err != nil {
		t.Fatal(err)
	}
	bU, err := cat.Get("b_units")
	if err != nil {
		t.Fatal(err)
	}
	if aT.Len() == 0 || bU.Len() == 0 {
		t.Fatalf("split fleet: a=%d b=%d", aT.Len(), bU.Len())
	}
	if aT.Len()+bU.Len() != g.Config().Turbines {
		t.Errorf("turbine total = %d", aT.Len()+bU.Len())
	}
	aS, _ := cat.Get("a_sensors")
	bC, _ := cat.Get("b_channels")
	if aS.Len()+bC.Len() != g.SensorCount() {
		t.Errorf("sensor total = %d, want %d", aS.Len()+bC.Len(), g.SensorCount())
	}
	// Weather and service history exist.
	if w, err := cat.Get("weather"); err != nil || w.Len() == 0 {
		t.Error("weather missing")
	}
	if s, err := cat.Get("service_events"); err != nil || s.Len() == 0 {
		t.Error("service history missing")
	}
}

func TestTBoxScale(t *testing.T) {
	tb := TBox()
	terms := len(tb.Classes()) + len(tb.ObjectProperties()) + len(tb.DataProperties())
	// Paper [10]: "hundreds of terms and axioms".
	if terms < 100 {
		t.Errorf("ontology has %d terms, want hundreds", terms)
	}
	if tb.Len() < 100 {
		t.Errorf("ontology has %d axioms", tb.Len())
	}
	if !tb.IsSubClassOf(NS+"GasTurbine", NS+"PowerAppliance") {
		t.Error("hierarchy broken")
	}
	if !tb.IsSubClassOf(NS+"InletTemperatureSensor", NS+"Sensor") {
		t.Error("sensor hierarchy broken")
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMappingsCoverVocabulary(t *testing.T) {
	set := Mappings()
	for _, pred := range []string{
		NS + "Turbine", NS + "Assembly", NS + "Sensor", NS + "inAssembly",
		NS + "hasValue", NS + "showsFailure", NS + "TemperatureSensor",
	} {
		ms := set.ForPred(pred)
		if len(ms) < 2 {
			t.Errorf("%s mapped by %d sources, want both", pred, len(ms))
		}
	}
	// Enrich+unfold a Sensor query: both sources and all kind classes
	// must surface.
	u, _, err := rewrite.PerfectRef(
		cq.New([]string{"x"}, cq.ClassAtom(NS+"Sensor", cq.V("x"))),
		TBox(), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet, stats, err := mapping.Unfold(u, set, mapping.UnfoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Sensor alone: 2 sources; 5 kind subclasses x 2 sources; plus the
	// domain/range routes (inAssembly range, hasValue and showsFailure
	// domains) x 2 sources each = 18. Placement variants are unmapped.
	if len(fleet) != 18 {
		t.Errorf("sensor fleet = %d queries, want 18", len(fleet))
	}
	if stats.UnmappedAtoms == 0 {
		t.Error("expected unmapped placement subclasses to be dropped")
	}
}

func TestGenerateStreamDeterministic(t *testing.T) {
	g, _ := New(SmallConfig())
	cfg := StreamConfig{FromMS: 0, ToMS: 5_000, StepMS: 1_000, Seed: 7,
		Sensors: []int64{1, 2}}
	a1, r1, err := g.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, r2, err := g.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) || len(a1) != 2*5 {
		t.Fatalf("tuples = %d", len(a1))
	}
	for i := range a1 {
		if a1[i].TS != a2[i].TS || a1[i].Row.String() != a2[i].Row.String() || r1[i] != r2[i] {
			t.Fatal("generation not deterministic")
		}
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(a1); i++ {
		if a1[i].TS < a1[i-1].TS {
			t.Fatal("timestamps out of order")
		}
	}
}

func TestPlantedMonotonicEvent(t *testing.T) {
	g, _ := New(SmallConfig())
	events := []Event{{
		Kind: EventMonotonicFailure, SensorID: 1, StartMS: 1_000, EndMS: 9_000,
	}}
	tuples, _, err := g.Generate(StreamConfig{
		FromMS: 0, ToMS: 10_000, StepMS: 500,
		Sensors: []int64{1}, Events: events, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Within the event, values are strictly increasing and the flag is
	// raised near the end.
	var inEvent []float64
	sawFail := false
	for _, el := range tuples {
		ts := el.TS
		if ts >= 1000 && ts < 9000 {
			v, _ := el.Row[2].AsFloat()
			inEvent = append(inEvent, v)
			if f, _ := el.Row[3].AsInt(); f == 1 {
				sawFail = true
			}
		}
	}
	for i := 1; i < len(inEvent); i++ {
		if inEvent[i] <= inEvent[i-1] {
			t.Fatalf("ramp not increasing at %d: %v", i, inEvent)
		}
	}
	if !sawFail {
		t.Fatal("failure flag never raised")
	}
}

func TestPlantedThresholdAndCorrelation(t *testing.T) {
	g, _ := New(SmallConfig())
	events := g.PlantDefaultEvents(0, 60_000)
	if len(events) < 3 {
		t.Fatalf("events = %v", events)
	}
	kinds := map[EventKind]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
		if e.Kind == EventCorrelatedPair && e.PairID == 0 {
			t.Error("pair event without pair")
		}
	}
	if !kinds[EventMonotonicFailure] || !kinds[EventThreshold] || !kinds[EventCorrelatedPair] {
		t.Errorf("event kinds = %v", kinds)
	}
	// Threshold event actually exceeds the alarm threshold.
	var thrEvent Event
	for _, e := range events {
		if e.Kind == EventThreshold {
			thrEvent = e
		}
	}
	tuples, _, err := g.Generate(StreamConfig{
		FromMS: thrEvent.StartMS, ToMS: thrEvent.EndMS, StepMS: 1000,
		Sensors: []int64{thrEvent.SensorID}, Events: events, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	limit := g.Threshold(thrEvent.SensorID)
	for _, el := range tuples {
		if v, _ := el.Row[2].AsFloat(); v <= limit {
			t.Fatalf("threshold event value %g below limit %g", v, limit)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	g, _ := New(SmallConfig())
	if _, _, err := g.Generate(StreamConfig{FromMS: 5, ToMS: 5, StepMS: 1}); err == nil {
		t.Error("empty range accepted")
	}
	if _, _, err := g.Generate(StreamConfig{FromMS: 0, ToMS: 10, StepMS: 0}); err == nil {
		t.Error("zero step accepted")
	}
	if _, _, err := g.Generate(StreamConfig{FromMS: 0, ToMS: 10, StepMS: 1,
		Events: []Event{{StartMS: 5, EndMS: 5}}}); err == nil {
		t.Error("empty event accepted")
	}
}

func TestCatalogTwentyTasksParse(t *testing.T) {
	tasks := Catalog()
	if len(tasks) != 20 {
		t.Fatalf("catalog has %d tasks, paper says 20", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Errorf("duplicate task id %s", task.ID)
		}
		seen[task.ID] = true
		if _, err := starql.Parse(task.Query); err != nil {
			t.Errorf("task %s does not parse: %v\n%s", task.ID, err, task.Query)
		}
	}
	if _, ok := TaskByID(tasks[3].ID); !ok {
		t.Error("TaskByID failed")
	}
	if _, ok := TaskByID("nope"); ok {
		t.Error("TaskByID found a ghost")
	}
}

func TestTestSetsGrowToFullCatalog(t *testing.T) {
	sets := TestSets()
	if len(sets) != 10 {
		t.Fatalf("test sets = %d, paper says 10", len(sets))
	}
	for i, s := range sets {
		want := 2 * (i + 1)
		if want > 20 {
			want = 20
		}
		if len(s) != want {
			t.Errorf("set %d has %d tasks, want %d", i+1, len(s), want)
		}
	}
}

func TestStreamSchemasValidate(t *testing.T) {
	for _, s := range StreamSchemas() {
		if err := s.Validate(); err != nil {
			t.Errorf("schema %s: %v", s.Name, err)
		}
	}
}

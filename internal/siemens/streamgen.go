package siemens

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/relation"
	"repro/internal/stream"
)

// EventKind classifies planted stream patterns.
type EventKind uint8

const (
	// EventMonotonicFailure is a monotonic value ramp that ends in a
	// failure flag — the pattern Figure 1's query detects.
	EventMonotonicFailure EventKind = iota
	// EventThreshold is a spike above the sensor's alarm threshold.
	EventThreshold
	// EventCorrelatedPair makes two sensors move together for a period.
	EventCorrelatedPair
)

// Event is one planted pattern: the ground truth the diagnostic queries
// must detect.
type Event struct {
	Kind     EventKind
	SensorID int64
	PairID   int64 // second sensor of a correlated pair
	StartMS  int64
	EndMS    int64
}

// StreamConfig controls a generation run.
type StreamConfig struct {
	FromMS, ToMS int64
	StepMS       int64 // sampling period per sensor
	// Sensors restricts generation to the given sensor ids (nil = all,
	// which at full fleet scale is a lot of tuples).
	Sensors []int64
	// Events to plant. Events referencing sensors outside the Sensors
	// set are ignored.
	Events []Event
	// NoiseAmp scales the random noise (default 1.0).
	NoiseAmp float64
	Seed     int64
}

// Validate checks a stream configuration.
func (c StreamConfig) Validate() error {
	if c.ToMS <= c.FromMS {
		return fmt.Errorf("siemens: empty time range")
	}
	if c.StepMS <= 0 {
		return fmt.Errorf("siemens: StepMS must be positive")
	}
	for _, e := range c.Events {
		if e.EndMS <= e.StartMS {
			return fmt.Errorf("siemens: event with empty interval")
		}
	}
	return nil
}

// baseline is a sensor's nominal value level per kind.
func (g *Generator) baseline(sid int64) float64 {
	switch g.SensorKind(sid) {
	case "temperature":
		return 70
	case "pressure":
		return 5
	case "vibration":
		return 0.5
	case "flow":
		return 120
	case "speed":
		return 3000
	default:
		return 1
	}
}

// Threshold returns the alarm threshold of a sensor (what the catalog's
// threshold tasks test against).
func (g *Generator) Threshold(sid int64) float64 { return g.baseline(sid) * 1.5 }

// Generate produces the measurement tuples of both streams for the
// configured interval, ordered by timestamp. The second return value
// routes each tuple: true = msmt_a, false = msmt_b.
//
// Signal model per sensor: baseline + slow sinusoidal drift + Gaussian
// noise, overridden inside planted events by the event's pattern.
func (g *Generator) Generate(cfg StreamConfig) ([]stream.Timestamped, []bool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	noise := cfg.NoiseAmp
	if noise == 0 {
		noise = 1.0
	}
	sensors := cfg.Sensors
	if sensors == nil {
		sensors = make([]int64, g.SensorCount())
		for i := range sensors {
			sensors[i] = int64(i + 1)
		}
	}
	// Index events by sensor.
	events := map[int64][]Event{}
	for _, e := range cfg.Events {
		events[e.SensorID] = append(events[e.SensorID], e)
		if e.Kind == EventCorrelatedPair && e.PairID != 0 {
			events[e.PairID] = append(events[e.PairID], e)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ g.cfg.Seed))
	var out []stream.Timestamped
	var routeA []bool
	for ts := cfg.FromMS; ts < cfg.ToMS; ts += cfg.StepMS {
		for _, sid := range sensors {
			val, fail := g.sample(sid, ts, events[sid], noise, rng)
			tid := int((sid - 1) / int64(g.cfg.SensorsPerTurbine))
			isA := g.sourceAOf(tid)
			row := relation.Tuple{
				relation.Int(sid), relation.Time(ts), relation.Float(val), relation.Int(boolToInt(fail)),
			}
			out = append(out, stream.Timestamped{TS: ts, Row: row})
			routeA = append(routeA, isA)
		}
	}
	return out, routeA, nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sample computes one measurement.
func (g *Generator) sample(sid int64, ts int64, evs []Event, noiseAmp float64, rng *rand.Rand) (float64, bool) {
	base := g.baseline(sid)
	val := base + base*0.02*math.Sin(float64(ts)/60000+float64(sid)) +
		rng.NormFloat64()*base*0.005*noiseAmp
	fail := false
	for _, e := range evs {
		if ts < e.StartMS || ts >= e.EndMS {
			continue
		}
		progress := float64(ts-e.StartMS) / float64(e.EndMS-e.StartMS)
		switch e.Kind {
		case EventMonotonicFailure:
			// Strictly increasing ramp; the last samples raise the flag.
			val = base + base*0.5*progress
			if progress > 0.9 {
				fail = true
			}
		case EventThreshold:
			val = g.Threshold(sid) * 1.2
		case EventCorrelatedPair:
			// Both sensors of the pair follow the same sawtooth.
			val = base + base*0.3*math.Sin(float64(ts-e.StartMS)/2000)
		}
	}
	return val, fail
}

// RouteName returns the stream a tuple belongs to.
func RouteName(isA bool) string {
	if isA {
		return "msmt_a"
	}
	return "msmt_b"
}

// ToStreamRow converts a canonical (sid, ts, val, fail) tuple to the
// target stream's column order; both streams happen to share arity, so
// the conversion is the identity for msmt_a and a rename for msmt_b.
func ToStreamRow(row relation.Tuple, isA bool) relation.Tuple { return row }

// SensorsOfTurbine lists a turbine's sensor ids.
func (g *Generator) SensorsOfTurbine(tid int) []int64 {
	out := make([]int64, g.cfg.SensorsPerTurbine)
	for k := 0; k < g.cfg.SensorsPerTurbine; k++ {
		out[k] = g.sensorID(tid, k)
	}
	return out
}

// PlantDefaultEvents returns a deterministic set of events covering all
// kinds: a monotonic-failure ramp on the first temperature sensor of
// turbines 0 and 1, a threshold spike on a pressure sensor, and one
// correlated pair, all within [fromMS, toMS).
func (g *Generator) PlantDefaultEvents(fromMS, toMS int64) []Event {
	span := toMS - fromMS
	var events []Event
	findKind := func(tid int, kind string) int64 {
		for _, sid := range g.SensorsOfTurbine(tid) {
			if g.SensorKind(sid) == kind {
				return sid
			}
		}
		return g.sensorID(tid, 0)
	}
	events = append(events, Event{
		Kind: EventMonotonicFailure, SensorID: findKind(0, "temperature"),
		StartMS: fromMS + span/10, EndMS: fromMS + span/2,
	})
	if g.cfg.Turbines > 1 {
		events = append(events, Event{
			Kind: EventMonotonicFailure, SensorID: findKind(1, "temperature"),
			StartMS: fromMS + span/3, EndMS: fromMS + 2*span/3,
		})
	}
	events = append(events, Event{
		Kind: EventThreshold, SensorID: findKind(0, "pressure"),
		StartMS: fromMS + span/2, EndMS: fromMS + 3*span/4,
	})
	pairA := findKind(0, "vibration")
	pairB := pairA + int64(len(SensorKinds)) // next vibration sensor on same turbine
	events = append(events, Event{
		Kind: EventCorrelatedPair, SensorID: pairA, PairID: pairB,
		StartMS: fromMS, EndMS: toMS,
	})
	sort.Slice(events, func(i, j int) bool { return events[i].StartMS < events[j].StartMS })
	return events
}

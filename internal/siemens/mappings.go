package siemens

import (
	"repro/internal/obda/mapping"
	"repro/internal/relation"
	"repro/internal/sql"
)

// Mappings builds the GAV mappings of the deployment: each ontological
// term is mapped to queries over both source schemas, which is exactly
// the situation motivating OBSSDI — "semantically the same but
// syntactically different" sources hidden behind one vocabulary.
func Mappings() *mapping.Set {
	var (
		turbineT  = mapping.MustParseTemplate(DataNS + "turbine/{tid}")
		turbineTB = mapping.MustParseTemplate(DataNS + "turbine/{unit_id}")
		assemblyT = mapping.MustParseTemplate(DataNS + "assembly/{aid}")
		assemblyB = mapping.MustParseTemplate(DataNS + "assembly/{part_id}")
		sensorT   = mapping.MustParseTemplate(DataNS + "sensor/{sid}")
		sensorB   = mapping.MustParseTemplate(DataNS + "sensor/{chan_id}")
		sensorSA  = mapping.MustParseTemplate(DataNS + "sensor/{sid}")
		sensorSB  = mapping.MustParseTemplate(DataNS + "sensor/{chan_nr}")
	)
	kindFilter := func(col, kind string) sql.Expr {
		return sql.Bin("=", sql.Col(col), sql.Lit(relation.String_(kind)))
	}

	// Inclusion dependencies of the static schemas (every sensor belongs
	// to an assembly, every assembly to a turbine; likewise on source B).
	// Declared on each mapping reading the child table so constraint
	// pruning can eliminate redundant parent joins.
	fkSensorsA := []mapping.ForeignKey{{Columns: []string{"aid"},
		RefTable: "a_assemblies", RefColumns: []string{"aid"}}}
	fkChannelsB := []mapping.ForeignKey{{Columns: []string{"part_id"},
		RefTable: "b_parts", RefColumns: []string{"part_id"}}}
	fkAssembliesA := []mapping.ForeignKey{{Columns: []string{"tid"},
		RefTable: "a_turbines", RefColumns: []string{"tid"}}}
	fkPartsB := []mapping.ForeignKey{{Columns: []string{"unit_id"},
		RefTable: "b_units", RefColumns: []string{"unit_id"}}}

	ms := []mapping.Mapping{
		// Turbine from both sources.
		{ID: "turbineA", Pred: NS + "Turbine", IsClass: true,
			Subject: turbineT, Source: mapping.SourceRef{Table: "a_turbines"},
			KeyColumns: []string{"tid"}},
		{ID: "turbineB", Pred: NS + "Turbine", IsClass: true,
			Subject: turbineTB, Source: mapping.SourceRef{Table: "b_units"},
			KeyColumns: []string{"unit_id"}},

		// Assembly from both sources.
		{ID: "assemblyA", Pred: NS + "Assembly", IsClass: true,
			Subject: assemblyT, Source: mapping.SourceRef{Table: "a_assemblies"},
			KeyColumns: []string{"aid"}, FKs: fkAssembliesA},
		{ID: "assemblyB", Pred: NS + "Assembly", IsClass: true,
			Subject: assemblyB, Source: mapping.SourceRef{Table: "b_parts"},
			KeyColumns: []string{"part_id"}, FKs: fkPartsB},

		// Sensor from both sources.
		{ID: "sensorA", Pred: NS + "Sensor", IsClass: true,
			Subject: sensorT, Source: mapping.SourceRef{Table: "a_sensors"},
			KeyColumns: []string{"sid"}, FKs: fkSensorsA},
		{ID: "sensorB", Pred: NS + "Sensor", IsClass: true,
			Subject: sensorB, Source: mapping.SourceRef{Table: "b_channels"},
			KeyColumns: []string{"chan_id"}, FKs: fkChannelsB},

		// inAssembly: assembly -> sensor (the paper's Figure 1 direction).
		{ID: "inAssemblyA", Pred: NS + "inAssembly",
			Subject: mapping.MustParseTemplate(DataNS + "assembly/{aid}"),
			Object:  sensorT,
			Source:  mapping.SourceRef{Table: "a_sensors"}, KeyColumns: []string{"sid"},
			FKs: fkSensorsA},
		{ID: "inAssemblyB", Pred: NS + "inAssembly",
			Subject: mapping.MustParseTemplate(DataNS + "assembly/{part_id}"),
			Object:  sensorB,
			Source:  mapping.SourceRef{Table: "b_channels"}, KeyColumns: []string{"chan_id"},
			FKs: fkChannelsB},

		// inTurbine: assembly -> turbine.
		{ID: "inTurbineA", Pred: NS + "inTurbine",
			Subject: assemblyT, Object: turbineT,
			Source: mapping.SourceRef{Table: "a_assemblies"}, KeyColumns: []string{"aid"},
			FKs: fkAssembliesA},
		{ID: "inTurbineB", Pred: NS + "inTurbine",
			Subject: assemblyB, Object: mapping.MustParseTemplate(DataNS + "turbine/{unit_id}"),
			Source: mapping.SourceRef{Table: "b_parts"}, KeyColumns: []string{"part_id"},
			FKs: fkPartsB},

		// Model data property.
		{ID: "modelA", Pred: NS + "hasModel",
			Subject: turbineT, Object: mapping.MustParseTemplate("{model}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "a_turbines"}, KeyColumns: []string{"tid"}},
		{ID: "modelB", Pred: NS + "hasModel",
			Subject: turbineTB, Object: mapping.MustParseTemplate("{unit_model}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "b_units"}, KeyColumns: []string{"unit_id"}},

		// Streaming measurement value from both streams. Each stream's
		// sensor id column is declared as an inclusion dependency into its
		// source's static sensor table: msmt_a only ever carries source-A
		// sensor ids and msmt_b only source-B channel numbers (streamgen
		// routes by the sensor's source). Constraint pruning probes these
		// at registration time to drop the cross-source fleet members.
		{ID: "valueA", Pred: NS + "hasValue",
			Subject: sensorSA, Object: mapping.MustParseTemplate("{val}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "msmt_a", IsStream: true},
			FKs: []mapping.ForeignKey{{Columns: []string{"sid"},
				RefTable: "a_sensors", RefColumns: []string{"sid"}}}},
		{ID: "valueB", Pred: NS + "hasValue",
			Subject: sensorSB, Object: mapping.MustParseTemplate("{reading}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "msmt_b", IsStream: true},
			FKs: []mapping.ForeignKey{{Columns: []string{"chan_nr"},
				RefTable: "b_channels", RefColumns: []string{"chan_id"}}}},

		// Failure flag from both streams.
		{ID: "failureA", Pred: NS + "showsFailure",
			Subject: sensorSA, Object: mapping.MustParseTemplate("{fail}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "msmt_a", IsStream: true,
				Where: sql.Bin("=", sql.Col("fail"), sql.Lit(relation.Int(1)))},
			FKs: []mapping.ForeignKey{{Columns: []string{"sid"},
				RefTable: "a_sensors", RefColumns: []string{"sid"}}}},
		{ID: "failureB", Pred: NS + "showsFailure",
			Subject: sensorSB, Object: mapping.MustParseTemplate("{status}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "msmt_b", IsStream: true,
				Where: sql.Bin("=", sql.Col("status"), sql.Lit(relation.Int(1)))},
			FKs: []mapping.ForeignKey{{Columns: []string{"chan_nr"},
				RefTable: "b_channels", RefColumns: []string{"chan_id"}}}},
	}

	// Sensor-kind subclasses from both sources, via kind filters.
	kinds := map[string]string{
		"temperature": "TemperatureSensor",
		"pressure":    "PressureSensor",
		"vibration":   "VibrationSensor",
		"flow":        "FlowSensor",
		"speed":       "SpeedSensor",
	}
	for kind, class := range kinds {
		ms = append(ms,
			mapping.Mapping{
				ID: "kindA:" + kind, Pred: NS + class, IsClass: true,
				Subject: sensorT,
				Source: mapping.SourceRef{Table: "a_sensors",
					Where: kindFilter("kind", kind)},
				KeyColumns: []string{"sid"}, FKs: fkSensorsA,
			},
			mapping.Mapping{
				ID: "kindB:" + kind, Pred: NS + class, IsClass: true,
				Subject: sensorB,
				Source: mapping.SourceRef{Table: "b_channels",
					Where: kindFilter("chan_type", kind)},
				KeyColumns: []string{"chan_id"}, FKs: fkChannelsB,
			},
		)
	}
	return mapping.MustNewSet(ms...)
}

// Command optique-bench regenerates the paper's quantitative claims and
// prints one table per experiment (see DESIGN.md's experiment index and
// EXPERIMENTS.md for recorded runs):
//
//	-exp conciseness   E3: one STARQL query vs its unfolded fleet
//	-exp concurrent    E4: 1..1024 concurrent diagnostic tasks
//	-exp scaling       E5: node scaling 1..128
//	-exp bootstrap     E6: bootstrapping time and asset counts
//	-exp testsets      E13: the 10 preconfigured test sets
//	-exp record        run `go test -bench` and write machine-readable
//	                   results (see -bench/-benchtime/-out)
//	-exp list          print the accepted -exp values, one per line
//	-exp all           everything except record
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	optique "repro"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/exastream"
	"repro/internal/obda/mapping"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/siemens"
	"repro/internal/sql"
	"repro/internal/starql"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// telem is the monitoring endpoint's data source. Experiments create
// and tear down clusters as they run, so the endpoint reads whichever
// runtime is current rather than binding to one at startup.
var telem struct {
	mu  sync.Mutex
	cfg telemetry.HandlerConfig
}

func setTelemetrySource(cfg telemetry.HandlerConfig) {
	telem.mu.Lock()
	defer telem.mu.Unlock()
	telem.cfg = cfg
}

func currentSource() telemetry.HandlerConfig {
	telem.mu.Lock()
	defer telem.mu.Unlock()
	return telem.cfg
}

func currentSnapshot() telemetry.Snapshot {
	if snap := currentSource().Snapshot; snap != nil {
		return snap()
	}
	return telemetry.Snapshot{}
}

func currentTraces() []telemetry.TraceSnapshot {
	if traces := currentSource().Traces; traces != nil {
		return traces()
	}
	return nil
}

func currentQueries() []telemetry.QueryLag {
	if queries := currentSource().Queries; queries != nil {
		return queries()
	}
	return nil
}

func currentExplain(id string, analyze bool) (string, error) {
	if explain := currentSource().Explain; explain != nil {
		return explain(id, analyze)
	}
	return "", fmt.Errorf("optique-bench: no runtime is currently up")
}

func currentEvents() []telemetry.Event {
	if events := currentSource().Events; events != nil {
		return events()
	}
	return nil
}

// experiments enumerates the accepted -exp values in the order `-exp
// list` prints them; scripts/check_docs.sh validates documented
// invocations against this list.
var experiments = []string{
	"conciseness", "concurrent", "scaling", "bootstrap", "testsets",
	"record", "list", "all",
}

// interpretHaving carries the -havingcompile flag (inverted) into the
// full-system experiments (testsets).
var interpretHaving bool

// vecMode carries the -vectorized flag into the cluster and full-system
// experiments (VecOff = tuple-at-a-time row path); the recorded `go
// test -bench` dimensions carry their own ablation instead.
var vecMode exastream.VecMode

// recoveryOn/checkpointEvery carry -recovery/-checkpoint-every into the
// cluster experiments: checkpoint overhead is part of the measured path,
// so the sweeps can quantify what exactly-once delivery costs.
var (
	recoveryOn      bool
	checkpointEvery int
)

// memBudget/tenantQuota carry -mem-budget/-tenant-quota into the
// cluster experiments, so the sweeps can measure governed runs (budget
// enforcement and admission checks on the registration/ingest path).
var (
	memBudget   int64
	tenantQuota int
)

// explainTasks/flightRecorder carry -explain/-flight-recorder into the
// full-system experiments: the fleet lag table after each test set, and
// the per-node flight-recorder ring capacity behind /events.
var (
	explainTasks   bool
	flightRecorder int
)

// optimizeOn/analyzeOn carry -optimize/-analyze into the full-system
// experiments: constraint-pruned unfolding plus the statistics-driven
// cost-based planner, or statistics collection alone.
var (
	optimizeOn bool
	analyzeOn  bool
)

// transportKind/listenAddr carry -transport/-listen into the
// full-system experiments: the in-process channel hop (default) or
// framed TCP sessions, so sweeps can price the wire.
var (
	transportKind cluster.TransportKind
	listenAddr    string
)

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experiments, "|"))
	maxQueries := flag.Int("maxqueries", 1024, "upper bound for the concurrency sweep")
	maxNodes := flag.Int("maxnodes", 128, "upper bound for the node-scaling sweep")
	benchPat := flag.String("bench", "Figure1EndToEnd|CompiledVsInterpreted|HavingMatcher", "benchmark pattern for -exp record")
	benchTime := flag.String("benchtime", "2s", "benchtime for -exp record")
	benchOut := flag.String("out", "BENCH_PR10.json", "output file for -exp record")
	havingcompile := flag.Bool("havingcompile", true, "compile STARQL HAVING conditions to slot-frame matchers (false = tree interpreter)")
	vectorized := flag.Bool("vectorized", true, "execute windows on the columnar batch path (false = tuple-at-a-time row path)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /traces and /debug/pprof on this address (e.g. localhost:6060; unauthenticated, \":port\" binds loopback)")
	flag.BoolVar(&recoveryOn, "recovery", false, "checkpoint worker state for exactly-once recovery (measures the checkpoint overhead)")
	flag.IntVar(&checkpointEvery, "checkpoint-every", 64, "tuples between pulse-aligned checkpoints (with -recovery)")
	flag.Int64Var(&memBudget, "mem-budget", 0, "default per-query window-state byte budget; over-budget queries degrade instead of exhausting memory (0 = off)")
	flag.IntVar(&tenantQuota, "tenant-quota", 0, "max concurrently registered queries per tenant namespace (0 = off)")
	flag.BoolVar(&explainTasks, "explain", false, "print the fleet lag table after each full-system test set")
	flag.IntVar(&flightRecorder, "flight-recorder", 256, "per-node flight-recorder ring capacity in events (0 = off)")
	flag.BoolVar(&optimizeOn, "optimize", false, "statistics-driven cost-based planning: constraint-pruned unfolding plus index-scan choice and lookup-join reordering (implies -analyze)")
	flag.BoolVar(&analyzeOn, "analyze", false, "collect optimizer statistics without changing plans; EXPLAIN gains est-vs-obs rows")
	transportName := flag.String("transport", "channel", "node transport: channel (in-process) or tcp (framed loopback sessions with failure detection)")
	flag.StringVar(&listenAddr, "listen", "", "bind address for -transport=tcp (default 127.0.0.1:0)")
	flag.Parse()
	var err error
	if transportKind, err = cluster.ParseTransport(*transportName); err != nil {
		log.Fatal(err)
	}
	interpretHaving = !*havingcompile
	if !*vectorized {
		vecMode = exastream.VecOff
	}

	var telemetrySrv *telemetry.Server
	if *telemetryAddr != "" {
		srv, bound, err := telemetry.Serve(*telemetryAddr, telemetry.HandlerConfig{
			Snapshot: currentSnapshot,
			Traces:   currentTraces,
			Queries:  currentQueries,
			Explain:  currentExplain,
			Events:   currentEvents,
		})
		if err != nil {
			log.Fatal(err)
		}
		telemetrySrv = srv
		fmt.Printf("telemetry: http://%s/metrics (also /healthz /queries /events /traces)\n", bound)
	}

	switch *exp {
	case "conciseness":
		conciseness()
	case "concurrent":
		concurrent(*maxQueries)
	case "scaling":
		scaling(*maxNodes)
	case "bootstrap":
		bootstrapExp()
	case "testsets":
		testsets()
	case "record":
		record(*benchPat, *benchTime, *benchOut)
	case "list":
		for _, e := range experiments {
			fmt.Println(e)
		}
	case "all":
		conciseness()
		concurrent(*maxQueries)
		scaling(*maxNodes)
		bootstrapExp()
		testsets()
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	if telemetrySrv != nil {
		// Graceful drain instead of leaking the listener for the rest of
		// the process (and any embedding test binary).
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = telemetrySrv.Shutdown(ctx)
		cancel()
	}
}

// conciseness (E3): for each catalog task, compare the STARQL text with
// the unfolded fleet the system generates — the paper's "one ontological
// query instead of a fleet of hundreds of data queries".
func conciseness() {
	fmt.Println("== E3 conciseness: STARQL vs unfolded fleet (fleet grows with bindings) ==")
	gen, err := siemens.New(siemens.Config{
		Turbines: 20, SensorsPerTurbine: 20, AssembliesPerTurbine: 4,
		SourceASplit: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		log.Fatal(err)
	}
	tr := starql.NewTranslator(siemens.TBox(), siemens.Mappings(), cat)
	fmt.Printf("%-24s %10s %10s %10s %12s %12s %8s\n",
		"task", "starql(B)", "fleet(#)", "fleet_opt", "fleet(B)", "bindings", "ratio")
	for _, task := range siemens.Catalog()[:8] {
		q, err := starql.Parse(task.Query)
		if err != nil {
			log.Fatal(err)
		}
		out, err := tr.Translate(q, starql.Options{})
		if err != nil {
			log.Fatalf("%s: %v", task.ID, err)
		}
		// The same task unfolded under the declared exact-predicate and
		// FK constraints — the optimizer's registration-time fleet.
		pruned, err := tr.Translate(q, starql.Options{Unfold: mapping.UnfoldOptions{Prune: true}})
		if err != nil {
			log.Fatalf("%s (pruned): %v", task.ID, err)
		}
		bindings, err := tr.EvalBindings(out)
		if err != nil {
			log.Fatal(err)
		}
		fleetBytes := 0
		for _, s := range out.StaticFleet {
			fleetBytes += len(s.String())
		}
		for _, s := range out.StreamFleet {
			fleetBytes += len(s.String())
		}
		n := len(out.StaticFleet) + len(out.StreamFleet)
		nOpt := len(pruned.StaticFleet) + len(pruned.StreamFleet)
		ratio := float64(fleetBytes) / float64(len(task.Query))
		fmt.Printf("%-24s %10d %10d %10d %12d %12d %7.1fx\n",
			task.ID, len(task.Query), n, nOpt, fleetBytes, len(bindings), ratio)
	}
}

// concurrent (E4): sustained tuple rate with 2^k concurrent per-sensor
// diagnostic queries on an 8-node cluster.
func concurrent(max int) {
	fmt.Println("\n== E4 concurrent diagnostic tasks (8 nodes, per-sensor window queries) ==")
	fmt.Printf("%8s %14s %14s %10s %12s %12s %12s %12s\n",
		"queries", "tuples/s", "deliveries/s", "windows", "rowsScanned", "hashProbes", "idxLookups", "planHits")
	for n := 1; n <= max; n *= 2 {
		rate, deliveries, eng := runConcurrent(n, 8, 40_000)
		fmt.Printf("%8d %14.0f %14.0f %10d %12d %12d %12d %12d\n",
			n, rate, deliveries, eng.WindowsExecuted, eng.RowsScanned, eng.HashProbes, eng.IndexLookups, eng.PlanCacheHits)
	}
}

func runConcurrent(queries, nodes, tuples int) (float64, float64, exastream.Stats) {
	cat := relation.NewCatalog()
	copts := cluster.Options{
		Nodes: nodes, PartitionColumn: "sid",
		Engine: exastream.Options{AdaptiveIndexing: true, ShareWindows: true, Vectorized: vecMode},
	}
	if recoveryOn {
		copts.CheckpointEvery = checkpointEvery
	}
	copts.MemBudget = memBudget
	if tenantQuota > 0 {
		copts.TenantQuota = cluster.TenantQuota{MaxQueries: tenantQuota}
	}
	copts.FlightRecorder = flightRecorder
	cl, err := cluster.New(copts, func(int) *relation.Catalog { return cat })
	if err != nil {
		log.Fatal(err)
	}
	defer func() { cl.Gateway().Close(); cl.Close() }()
	setTelemetrySource(telemetry.HandlerConfig{
		Snapshot: cl.TelemetrySnapshot,
		Queries:  cl.QueryLags,
		Explain:  cl.ExplainQuery,
		Events:   cl.Events,
	})
	if err := cl.DeclareStream(stream.Schema{
		Name: "m",
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat)),
		TSCol: "ts",
	}); err != nil {
		log.Fatal(err)
	}
	var out int64
	for i := 0; i < queries; i++ {
		q := sql.MustParse(fmt.Sprintf(
			"SELECT w.sid, avg(w.val) FROM STREAM m [RANGE 1000 SLIDE 1000] AS w WHERE w.sid = %d GROUP BY w.sid", i%256))
		if _, err := cl.Register(fmt.Sprintf("q%04d", i), q, nil,
			func(string, int64, relation.Schema, []relation.Tuple) { atomic.AddInt64(&out, 1) }); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < tuples; i++ {
		ts := int64(i/256) * 10
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(int64(i % 256)), relation.Time(ts), relation.Float(float64(i % 100)),
		}}
		if err := cl.Ingest("m", el); err != nil {
			log.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	var deliveries int64
	for _, st := range cl.Stats() {
		deliveries += st.Tuples
	}
	// One consistent cluster-wide snapshot instead of summing fields
	// from per-node stats read at different instants.
	eng := cl.EngineTotals()
	// A degraded run (dead workers, shed tuples, quarantined queries)
	// invalidates the throughput numbers; flag it rather than report
	// silently wrong rates.
	if h := cl.Health(); h.Degraded() || h.Dropped > 0 {
		fmt.Printf("  !! degraded run: %d/%d nodes live, %d restarts, %d dropped, %d salvaged, %d quarantined, %d errors\n",
			h.Live, h.Nodes, h.Restarts, h.Dropped, h.Requeued, h.Suspended, h.Errors)
	}
	return float64(tuples) / elapsed.Seconds(), float64(deliveries) / elapsed.Seconds(), eng
}

// scaling (E5): fixed workload (128 queries, partitioned stream), node
// count swept 1..max; the paper scaled 1..128 VMs.
func scaling(maxNodes int) {
	fmt.Println("\n== E5 node scaling (128 per-sensor queries, partitioned ingest) ==")
	fmt.Printf("%8s %14s %10s %12s %12s\n", "nodes", "tuples/s", "speedup", "rowsScanned", "idxLookups")
	var base float64
	for n := 1; n <= maxNodes; n *= 2 {
		rate, _, eng := runConcurrent(128, n, 40_000)
		if base == 0 {
			base = rate
		}
		fmt.Printf("%8d %14.0f %9.2fx %12d %12d\n", n, rate, rate/base, eng.RowsScanned, eng.IndexLookups)
	}
}

// bootstrapExp (E6): bootstrapping time over the Siemens source schemas.
func bootstrapExp() {
	fmt.Println("\n== E6 bootstrapping the Siemens schemas ==")
	schema := bootstrap.Schema{
		BaseIRI: siemens.NS, DataIRI: siemens.DataNS,
		Tables: benchTables(),
	}
	start := time.Now()
	res, err := bootstrap.Direct(schema)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	classes, objProps, dataProps, nmaps := res.Stats()
	fmt.Printf("tables=%d time=%v classes=%d objProps=%d dataProps=%d mappings=%d axioms=%d\n",
		len(schema.Tables), elapsed, classes, objProps, dataProps, nmaps, res.TBox.Len())
}

func benchTables() []bootstrap.Table {
	var out []bootstrap.Table
	// Two source families with several tables each, mirroring the
	// generator plus historical shards.
	for i := 0; i < 20; i++ {
		out = append(out, bootstrap.Table{
			Name: fmt.Sprintf("hist_%d", i), PrimaryKey: "rid",
			Columns: []bootstrap.Column{
				{Name: "rid", Type: relation.TInt},
				{Name: "sid", Type: relation.TInt},
				{Name: "day", Type: relation.TInt},
				{Name: "avg_val", Type: relation.TFloat},
				{Name: "max_val", Type: relation.TFloat},
			},
		})
	}
	out = append(out,
		bootstrap.Table{Name: "a_turbines", PrimaryKey: "tid", Columns: []bootstrap.Column{
			{Name: "tid", Type: relation.TInt}, {Name: "model", Type: relation.TString},
			{Name: "country", Type: relation.TString}, {Name: "year", Type: relation.TInt}}},
		bootstrap.Table{Name: "a_assemblies", PrimaryKey: "aid", Columns: []bootstrap.Column{
			{Name: "aid", Type: relation.TInt}, {Name: "tid", Type: relation.TInt},
			{Name: "kind", Type: relation.TString}}},
		bootstrap.Table{Name: "a_sensors", PrimaryKey: "sid", Columns: []bootstrap.Column{
			{Name: "sid", Type: relation.TInt}, {Name: "aid", Type: relation.TInt},
			{Name: "kind", Type: relation.TString}}},
		bootstrap.Table{Name: "msmt_a", IsStream: true, TSCol: "ts", Columns: []bootstrap.Column{
			{Name: "sid", Type: relation.TInt}, {Name: "ts", Type: relation.TTime},
			{Name: "val", Type: relation.TFloat}, {Name: "fail", Type: relation.TInt}}},
	)
	return out
}

// testsets (E13): run each of the 10 preconfigured sets end-to-end on a
// 4-node cluster and report throughput and alerts.
func testsets() {
	fmt.Println("\n== E13 the 10 preconfigured test sets (4 nodes) ==")
	fmt.Printf("%6s %9s %12s %12s %10s\n", "set", "queries", "tuples", "tuples/s", "alerts")
	for i := 1; i <= 10; i++ {
		queries, tuples, rate, alerts := runTestSet(i)
		fmt.Printf("%6d %9d %12d %12.0f %10d\n", i, queries, tuples, rate, alerts)
	}
}

func runTestSet(idx int) (int, int, float64, int64) {
	gen, err := siemens.New(siemens.Config{
		Turbines: 4, SensorsPerTurbine: 10, AssembliesPerTurbine: 2,
		SourceASplit: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		log.Fatal(err)
	}
	scfg := optique.Config{Nodes: 4, InterpretHaving: interpretHaving, Vectorized: vecMode,
		Optimize: optimizeOn, Analyze: analyzeOn}
	if recoveryOn {
		scfg.CheckpointEvery = checkpointEvery
	}
	scfg.MemBudget = memBudget
	if tenantQuota > 0 {
		scfg.TenantQuota = cluster.TenantQuota{MaxQueries: tenantQuota}
	}
	scfg.FlightRecorder = flightRecorder
	scfg.Transport = transportKind
	scfg.Listen = listenAddr
	sys, err := optique.NewSystem(scfg, siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			log.Fatal(err)
		}
	}
	defer sys.Close()
	setTelemetrySource(telemetry.HandlerConfig{
		Snapshot: sys.TelemetrySnapshot,
		Traces:   sys.Traces,
		Queries:  sys.QueryLags,
		Explain:  sys.Explain,
		Events:   sys.Events,
	})
	var alerts int64
	set := siemens.TestSets()[idx-1]
	for _, task := range set {
		if _, err := sys.RegisterTask(task.ID, task.Query,
			func(string, int64, []rdf.Triple) { atomic.AddInt64(&alerts, 1) }); err != nil {
			log.Fatal(err)
		}
	}
	var sensors []int64
	for tid := 0; tid < 4; tid++ {
		sensors = append(sensors, gen.SensorsOfTurbine(tid)...)
	}
	events := gen.PlantDefaultEvents(0, 20_000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 20_000, StepMS: 500, Sensors: sensors, Events: events, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for i, el := range tuples {
		if err := sys.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if explainTasks {
		printLagTable(sys.QueryLags())
	}
	return len(set), len(tuples), float64(len(tuples)) / elapsed.Seconds(), alerts
}

// printLagTable renders the fleet lag view (-explain): per query its
// hosting node, degrade state, progress, watermark lag against the
// fleet frontier, and window-state backlog.
func printLagTable(lags []telemetry.QueryLag) {
	if len(lags) == 0 {
		return
	}
	fmt.Printf("  %-24s %4s %-9s %8s %10s %8s %10s\n",
		"QUERY", "NODE", "STATE", "WINDOWS", "ROWS_OUT", "LAG_MS", "BACKLOG_B")
	for _, l := range lags {
		fmt.Printf("  %-24s %4d %-9s %8d %10d %8d %10d\n",
			l.ID, l.Node, l.State, l.Windows, l.RowsOut, l.WatermarkLagMS, l.BacklogBytes)
	}
}

// record runs `go test -bench` with -json and post-processes the event
// stream into a machine-readable benchmark file (BENCH_PR4.json), so the
// repository keeps accumulating a perf trajectory across PRs. Run it
// from the repository root.
func record(pattern, benchtime, out string) {
	args := []string{"test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem", "-json",
		".", "./internal/engine/", "./internal/starql/"}
	fmt.Printf("== record: go %v ==\n", args)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}

	type benchResult struct {
		Name        string  `json:"name"`
		Package     string  `json:"package"`
		Iterations  int64   `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	type event struct {
		Action  string `json:"Action"`
		Package string `json:"Package"`
		Output  string `json:"Output"`
	}
	// test2json splits benchmark result lines across output events at
	// write boundaries, so reassemble each package's output stream
	// before parsing lines out of it.
	outputs := make(map[string]*strings.Builder)
	var pkgs []string
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Action != "output" {
			continue
		}
		buf, ok := outputs[ev.Package]
		if !ok {
			buf = &strings.Builder{}
			outputs[ev.Package] = buf
			pkgs = append(pkgs, ev.Package)
		}
		buf.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("go test -bench: %v", err)
	}
	var results []benchResult
	for _, pkg := range pkgs {
		for _, line := range strings.Split(outputs[pkg].String(), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "Benchmark") {
				continue
			}
			// BenchmarkX/sub-8  <iters>  <v> ns/op  [<v> B/op  <v> allocs/op]
			fields := strings.Fields(line)
			if len(fields) < 4 {
				continue
			}
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			r := benchResult{Name: fields[0], Package: pkg, Iterations: iters}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				switch fields[i+1] {
				case "ns/op":
					r.NsPerOp = v
				case "B/op":
					r.BytesPerOp = v
				case "allocs/op":
					r.AllocsPerOp = v
				}
			}
			results = append(results, r)
			fmt.Println(line)
		}
	}
	if len(results) == 0 {
		log.Fatalf("no benchmark results matched %q", pattern)
	}
	doc := struct {
		Generated  string      `json:"generated"`
		GoVersion  string      `json:"go_version"`
		GOOS       string      `json:"goos"`
		GOARCH     string      `json:"goarch"`
		Benchtime  string      `json:"benchtime"`
		Pattern    string      `json:"pattern"`
		Benchmarks interface{} `json:"benchmarks"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  benchtime,
		Pattern:    pattern,
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), out)
}

// Command optique-demo drives the three demonstration scenarios of the
// paper's Section 3:
//
//	-scenario s1   diagnostics with the preconfigured deployment: register
//	               catalog tasks, replay telemetry, print the dashboard
//	-scenario s2   performance showcase: run one of the 10 test sets on an
//	               n-node cluster and report throughput
//	-scenario s3   user deployment: bootstrap assets from the raw schema,
//	               then run a task over them
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	optique "repro"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/rdf"
	"repro/internal/siemens"
)

// engineOpts carries the -parallelism/-plancache flags into deploy.
var engineOpts optique.EngineOptions

// interpretHaving carries the -havingcompile flag (inverted) into deploy.
var interpretHaving bool

// vecMode carries the -vectorized flag into deploy (VecOff = row path).
var vecMode optique.VecMode

// telemetryAddr, when non-empty, makes deploy serve /metrics, /traces
// and /debug/pprof for the running system.
var telemetryAddr string

// recoveryOn/checkpointEvery carry the -recovery/-checkpoint-every flags
// into deploy: pulse-aligned checkpoint/restore with exactly-once window
// delivery across failover.
var (
	recoveryOn      bool
	checkpointEvery int
)

// memBudget/tenantQuota carry the -mem-budget/-tenant-quota flags into
// deploy: per-task window-state byte budgets (degrade instead of OOM)
// and per-tenant concurrent-query caps.
var (
	memBudget   int64
	tenantQuota int
)

// explainTasks carries the -explain flag: after the replay, print each
// task's EXPLAIN ANALYZE pipeline, the fleet lag table, and the tail
// of the flight recorder. flightRecorder is the per-node event-ring
// capacity backing /events and the dump.
var (
	explainTasks   bool
	flightRecorder int
	optimizeOn     bool
	analyzeOn      bool
)

// transportKind/listenAddr carry the -transport/-listen flags into
// deploy: the in-process channel hop (default) or framed TCP sessions
// with heartbeat failure detection and suspicion-triggered failover.
var (
	transportKind cluster.TransportKind
	listenAddr    string
)

// telemetrySrv is the running observability endpoint (nil without
// -telemetry-addr); main shuts it down gracefully on exit instead of
// leaking the listener.
var telemetrySrv *optique.TelemetryServer

func main() {
	scenario := flag.String("scenario", "s1", "s1, s2, or s3")
	nodes := flag.Int("nodes", 4, "cluster size (s2)")
	testSet := flag.Int("set", 3, "test set 1..10 (s2)")
	seconds := flag.Int64("seconds", 30, "length of the replayed telemetry")
	turbines := flag.Int("turbines", 8, "fleet size for the replay")
	chaos := flag.Bool("chaos", false, "kill a worker mid-replay (s2) to showcase query failover")
	parallelism := flag.Int("parallelism", 0, "per-node worker pool for ready windows (0 = GOMAXPROCS, negative = sequential)")
	plancache := flag.Bool("plancache", true, "cache each continuous query's compiled plan across windows")
	havingcompile := flag.Bool("havingcompile", true, "compile STARQL HAVING conditions to slot-frame matchers (false = tree interpreter)")
	vectorized := flag.Bool("vectorized", true, "execute windows on the columnar batch path (false = tuple-at-a-time row path)")
	flag.BoolVar(&recoveryOn, "recovery", false, "checkpoint worker state and restore it across crashes/failover (exactly-once window delivery)")
	flag.IntVar(&checkpointEvery, "checkpoint-every", 64, "tuples between pulse-aligned checkpoints (with -recovery)")
	flag.StringVar(&telemetryAddr, "telemetry-addr", "", "serve /metrics, /traces and /debug/pprof on this address (e.g. localhost:6060; unauthenticated, \":port\" binds loopback)")
	flag.Int64Var(&memBudget, "mem-budget", 0, "default per-task window-state byte budget; over-budget tasks degrade instead of exhausting memory (0 = off)")
	flag.IntVar(&tenantQuota, "tenant-quota", 0, "max concurrently registered tasks per tenant namespace (0 = off)")
	flag.BoolVar(&explainTasks, "explain", false, "after the replay, print each task's EXPLAIN ANALYZE pipeline, the fleet lag table, and recent flight-recorder events")
	flag.IntVar(&flightRecorder, "flight-recorder", 256, "per-node flight-recorder ring capacity in events (0 = off)")
	flag.BoolVar(&optimizeOn, "optimize", false, "statistics-driven cost-based planning: constraint-pruned unfolding plus index-scan choice and lookup-join reordering (implies -analyze)")
	flag.BoolVar(&analyzeOn, "analyze", false, "collect optimizer statistics (table histograms, stream samples, cardinality feedback) without changing plans; EXPLAIN gains est-vs-obs rows")
	transportName := flag.String("transport", "channel", "node transport: channel (in-process) or tcp (framed loopback sessions with failure detection)")
	flag.StringVar(&listenAddr, "listen", "", "bind address for -transport=tcp (default 127.0.0.1:0)")
	flag.Parse()
	var err error
	if transportKind, err = cluster.ParseTransport(*transportName); err != nil {
		log.Fatal(err)
	}
	engineOpts = optique.EngineOptions{Parallelism: *parallelism, DisablePlanCache: !*plancache}
	interpretHaving = !*havingcompile
	if !*vectorized {
		vecMode = optique.VecOff
	}

	switch *scenario {
	case "s1":
		runS1(*seconds, *turbines)
	case "s2":
		runS2(*nodes, *testSet, *seconds, *turbines, *chaos)
	case "s3":
		fmt.Println("scenario S3 is the examples/bootstrap program; run: go run ./examples/bootstrap")
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	if telemetrySrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = telemetrySrv.Shutdown(ctx)
		cancel()
	}
}

// deploy builds a system over a fleet of the given size. A non-nil
// fault injector runs the cluster with restarts disabled so an injected
// crash exercises query failover rather than a silent restart.
func deploy(nodes, turbines int, inj optique.FaultInjector) (*optique.System, *siemens.Generator) {
	gen, err := siemens.New(siemens.Config{
		Turbines: turbines, SensorsPerTurbine: 10, AssembliesPerTurbine: 2,
		SourceASplit: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		log.Fatal(err)
	}
	cfg := optique.Config{Nodes: nodes, Faults: inj, Engine: engineOpts, InterpretHaving: interpretHaving, Vectorized: vecMode,
		Optimize: optimizeOn, Analyze: analyzeOn}
	if inj != nil {
		cfg.MaxRestarts = -1
	}
	if recoveryOn {
		cfg.CheckpointEvery = checkpointEvery
	}
	cfg.MemBudget = memBudget
	if tenantQuota > 0 {
		cfg.TenantQuota = cluster.TenantQuota{MaxQueries: tenantQuota}
	}
	cfg.FlightRecorder = flightRecorder
	cfg.Transport = transportKind
	cfg.Listen = listenAddr
	sys, err := optique.NewSystem(cfg, siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			log.Fatal(err)
		}
	}
	if telemetryAddr != "" {
		srv, bound, err := sys.ServeTelemetry(telemetryAddr)
		if err != nil {
			log.Fatal(err)
		}
		telemetrySrv = srv
		fmt.Printf("telemetry: http://%s/metrics (also /healthz /queries /events /traces)\n", bound)
	}
	return sys, gen
}

// introspect prints the -explain report: each task's EXPLAIN ANALYZE
// pipeline, the fleet-wide lag table, and the flight recorder's tail.
func introspect(sys *optique.System) {
	for _, id := range sys.TaskIDs() {
		text, err := sys.Explain(id, true)
		if err != nil {
			log.Printf("explain %s: %v", id, err)
			continue
		}
		fmt.Printf("\n%s", text)
	}
	lags := sys.QueryLags()
	fmt.Printf("\n%-24s %4s %-9s %8s %10s %8s %10s %s\n",
		"QUERY", "NODE", "STATE", "WINDOWS", "ROWS_OUT", "LAG_MS", "BACKLOG_B", "TENANT")
	for _, l := range lags {
		fmt.Printf("%-24s %4d %-9s %8d %10d %8d %10d %s\n",
			l.ID, l.Node, l.State, l.Windows, l.RowsOut, l.WatermarkLagMS, l.BacklogBytes, l.Tenant)
	}
	events := sys.Events()
	fmt.Printf("\nflight recorder: %d events retained", len(events))
	tail := events
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	for _, ev := range tail {
		fmt.Printf("\n  node=%d %s query=%s value=%d", ev.Node, ev.Kind, ev.Query, ev.Value)
	}
	fmt.Println()
}

func replay(sys *optique.System, gen *siemens.Generator, seconds int64, turbines int) int {
	var sensors []int64
	for tid := 0; tid < turbines; tid++ {
		sensors = append(sensors, gen.SensorsOfTurbine(tid)...)
	}
	events := gen.PlantDefaultEvents(0, seconds*1000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: seconds * 1000, StepMS: 500,
		Sensors: sensors, Events: events, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, el := range tuples {
		if err := sys.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	return len(tuples)
}

func runS1(seconds int64, turbines int) {
	sys, gen := deploy(2, turbines, nil)
	defer sys.Close()
	var alerts int64
	for _, id := range []string{"T01_mon_temperature", "T06_thr_pressure", "T12_corr_vibration"} {
		task, _ := siemens.TaskByID(id)
		if _, err := sys.RegisterTask(task.ID, task.Query,
			func(taskID string, end int64, ts []rdf.Triple) {
				atomic.AddInt64(&alerts, int64(len(ts)))
				for _, tr := range ts {
					fmt.Printf("[%s] t=%dms %s -> %s\n", taskID, end, tr.S.LocalName(), tr.O.LocalName())
				}
			}); err != nil {
			log.Fatal(err)
		}
	}
	n := replay(sys, gen, seconds, turbines)
	fmt.Printf("\nS1 done: %d tuples replayed, %d alert triples\n", n, alerts)
	if explainTasks {
		introspect(sys)
	}
}

func runS2(nodes, setIdx int, seconds int64, turbines int, chaos bool) {
	if setIdx < 1 || setIdx > 10 {
		log.Fatalf("test set must be 1..10, got %d", setIdx)
	}
	var inj optique.FaultInjector
	if chaos {
		// Crash the last worker on its 500th tuple: its tasks fail over
		// to the survivors and the replay keeps running.
		inj = faults.New(7).PanicAt(nodes-1, 500)
	}
	sys, gen := deploy(nodes, turbines, inj)
	defer sys.Close()
	set := siemens.TestSets()[setIdx-1]
	var rows int64
	start := time.Now()
	// Admission goes through the asynchronous gateway: submissions that
	// hit a full queue back off with jitter, and every ticket is awaited
	// under a deadline before the replay starts.
	tickets := make([]*cluster.Ticket, 0, len(set))
	for _, task := range set {
		task := task
		var tk *cluster.Ticket
		err := cluster.RetryBusy(context.Background(), 6, 2*time.Millisecond, func() error {
			var err error
			tk, err = sys.SubmitTask(task.ID, task.Query,
				func(string, int64, []rdf.Triple) { atomic.AddInt64(&rows, 1) })
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tk := range tickets {
		if _, err := tk.WaitContext(wctx); err != nil {
			log.Fatal(err)
		}
	}
	regTime := time.Since(start)

	start = time.Now()
	n := replay(sys, gen, seconds, turbines)
	elapsed := time.Since(start)
	fmt.Printf("S2: test set %d (%d queries) on %d nodes\n", setIdx, len(set), nodes)
	fmt.Printf("  registration: %v\n", regTime)
	fmt.Printf("  replay:       %d tuples in %v (%.0f tuples/s ingest)\n",
		n, elapsed, float64(n)/elapsed.Seconds())
	eng := sys.Cluster().EngineTotals()
	fmt.Printf("  engine: %d tuple deliveries, %d windows executed (%.0f deliveries/s)\n",
		eng.TuplesIn, eng.WindowsExecuted, float64(eng.TuplesIn)/elapsed.Seconds())
	h := sys.Health()
	fmt.Printf("  health: %d/%d nodes live (%d restarting, %d dead, %d restarts), "+
		"%d dropped, %d salvaged, %d quarantined, %d errors\n",
		h.Live, h.Nodes, h.Restarting, h.Dead, h.Restarts,
		h.Dropped, h.Requeued, h.Suspended, h.Errors)
	if recoveryOn {
		snap := sys.TelemetrySnapshot()
		fmt.Printf("  recovery: %d checkpoints, %d restores, %d tuples replayed, "+
			"%d windows deduped, %d torn\n",
			snap.Counters["recovery.checkpoints"], snap.Counters["recovery.restores"],
			snap.Counters["recovery.replayed"], snap.Counters["recovery.deduped_windows"],
			snap.Counters["recovery.torn"])
	}
	if chaos {
		for _, st := range sys.Stats() {
			fmt.Printf("  node %d: %-10s %6d tuples, %d queries\n",
				st.Node, st.State, st.Tuples, st.Queries)
		}
	}
	if explainTasks {
		introspect(sys)
	}
}

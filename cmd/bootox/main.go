// Command bootox runs the BootOX bootstrapper over the built-in Siemens
// source schemas and prints the extracted ontology (functional-style
// syntax) and mappings, plus timing and quality statistics — the
// "creating OPTIQUE ontologies and mappings is practical" demo claim.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bootstrap"
	"repro/internal/ontology"
	"repro/internal/relation"
)

func main() {
	verbose := flag.Bool("v", false, "print every generated axiom and mapping")
	r2rml := flag.Bool("r2rml", false, "print the mappings as W3C R2RML Turtle")
	flag.Parse()

	schema := siemensSourceSchema()
	start := time.Now()
	res, err := bootstrap.Direct(schema)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	classes, objProps, dataProps, nmaps := res.Stats()
	fmt.Printf("BootOX direct bootstrapping of %d tables: %v\n", len(schema.Tables), elapsed)
	fmt.Printf("  classes:           %d\n", classes)
	fmt.Printf("  object properties: %d\n", objProps)
	fmt.Printf("  data properties:   %d\n", dataProps)
	fmt.Printf("  mappings:          %d\n", nmaps)
	fmt.Printf("  axioms:            %d\n", res.TBox.Len())

	if *r2rml {
		fmt.Println("\n# R2RML")
		fmt.Print(res.Mappings.R2RMLTurtle("http://siemens.com/mappings/"))
		return
	}
	if *verbose {
		fmt.Println("\n# ontology")
		for _, c := range res.TBox.Classes() {
			fmt.Printf("Class(<%s>)\n", c)
		}
		for _, ci := range res.TBox.ConceptInclusions() {
			fmt.Printf("SubClassOf(%s %s)\n", renderConcept(ci.Sub), renderConcept(ci.Sup))
		}
		fmt.Println("\n# mappings")
		for _, m := range res.Mappings.All() {
			fmt.Println(m)
		}
	} else {
		fmt.Println("\nreport:")
		for _, line := range res.Report {
			fmt.Println("  " + line)
		}
	}
}

func renderConcept(c ontology.Concept) string {
	if c.Kind == ontology.NamedConcept {
		return "<" + c.IRI + ">"
	}
	if c.Role.Inverse {
		return "ExistsInv(<" + c.Role.IRI + ">)"
	}
	return "Exists(<" + c.Role.IRI + ">)"
}

// siemensSourceSchema mirrors the generator's two source schemas.
func siemensSourceSchema() bootstrap.Schema {
	return bootstrap.Schema{
		BaseIRI: "http://siemens.com/boot#",
		DataIRI: "http://siemens.com/data/",
		Tables: []bootstrap.Table{
			{Name: "a_turbines", PrimaryKey: "tid", Columns: []bootstrap.Column{
				{Name: "tid", Type: relation.TInt},
				{Name: "model", Type: relation.TString},
				{Name: "country", Type: relation.TString},
				{Name: "year", Type: relation.TInt}}},
			{Name: "a_assemblies", PrimaryKey: "aid", Columns: []bootstrap.Column{
				{Name: "aid", Type: relation.TInt},
				{Name: "tid", Type: relation.TInt},
				{Name: "kind", Type: relation.TString}}},
			{Name: "a_sensors", PrimaryKey: "sid", Columns: []bootstrap.Column{
				{Name: "sid", Type: relation.TInt},
				{Name: "aid", Type: relation.TInt},
				{Name: "kind", Type: relation.TString}},
				ForeignKeys: []bootstrap.FK{{Column: "aid", RefTable: "a_assemblies", RefColumn: "aid"}}},
			{Name: "b_units", PrimaryKey: "unit_id", Columns: []bootstrap.Column{
				{Name: "unit_id", Type: relation.TInt},
				{Name: "unit_model", Type: relation.TString},
				{Name: "site", Type: relation.TString}}},
			{Name: "b_parts", PrimaryKey: "part_id", Columns: []bootstrap.Column{
				{Name: "part_id", Type: relation.TInt},
				{Name: "unit_id", Type: relation.TInt},
				{Name: "part_kind", Type: relation.TString}},
				ForeignKeys: []bootstrap.FK{{Column: "unit_id", RefTable: "b_units", RefColumn: "unit_id"}}},
			{Name: "b_channels", PrimaryKey: "chan_id", Columns: []bootstrap.Column{
				{Name: "chan_id", Type: relation.TInt},
				{Name: "part_id", Type: relation.TInt},
				{Name: "chan_type", Type: relation.TString}},
				ForeignKeys: []bootstrap.FK{{Column: "part_id", RefTable: "b_parts", RefColumn: "part_id"}}},
			{Name: "service_events", PrimaryKey: "eid", Columns: []bootstrap.Column{
				{Name: "eid", Type: relation.TInt},
				{Name: "tid", Type: relation.TInt},
				{Name: "day", Type: relation.TInt},
				{Name: "kind", Type: relation.TString}}},
			{Name: "msmt_a", IsStream: true, TSCol: "ts", Columns: []bootstrap.Column{
				{Name: "sid", Type: relation.TInt},
				{Name: "ts", Type: relation.TTime},
				{Name: "val", Type: relation.TFloat},
				{Name: "fail", Type: relation.TInt}}},
		},
	}
}

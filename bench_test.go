// Benchmarks regenerating the paper's evaluation artefacts; each
// Benchmark maps to an experiment id in DESIGN.md (E1–E12) and the
// recorded results live in EXPERIMENTS.md. The cmd/optique-bench tool
// runs the larger sweeps (full 1..1024 queries, 1..128 nodes).
package optique_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	optique "repro"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exastream"
	"repro/internal/lsh"
	"repro/internal/obda/cq"
	"repro/internal/obda/mapping"
	"repro/internal/obda/rewrite"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/siemens"
	"repro/internal/sql"
	"repro/internal/starql"
	"repro/internal/stream"
)

// ---- E1: Figure 1 end to end ----

// BenchmarkFigure1EndToEnd measures one full replay of the paper's
// Figure 1 diagnostic task on a small fleet: registration amortised out,
// cost per ingested tuple reported. The plancache dimension ablates the
// compile-once pipeline: "off" rebuilds (and so recompiles) the window
// plan on every tick, which is what every tick paid before the cache.
// The having dimension ablates the compiled HAVING matcher: "interpreted"
// evaluates the sequence condition with the environment-copying tree
// walker instead of the slot-frame program.
func BenchmarkFigure1EndToEnd(b *testing.B) {
	b.Run("plancache=on", func(b *testing.B) {
		runFigure1(b, optique.Config{Nodes: 1})
	})
	b.Run("plancache=off", func(b *testing.B) {
		runFigure1(b, optique.Config{
			Nodes:  1,
			Engine: optique.EngineOptions{DisablePlanCache: true},
		})
	})
	b.Run("having=interpreted", func(b *testing.B) {
		runFigure1(b, optique.Config{Nodes: 1, InterpretHaving: true})
	})
	// The recorder dimension prices the flight recorder on the ingest
	// path (the default plancache=on run is the recorder=off baseline);
	// the acceptance bar is ≤5% over that baseline.
	b.Run("recorder=on", func(b *testing.B) {
		runFigure1(b, optique.Config{Nodes: 1, FlightRecorder: 256})
	})
	// The optimize dimension prices the statistics-driven planner end to
	// end (plancache=on doubles as the optimize=off baseline):
	// constraint-pruned unfolding shrinks the registered fleet, and
	// cost-based rewrites choose index scans and reorder lookup joins.
	// analyze=on prices statistics collection alone — plans execute
	// as-written while the stats store ingests windowed samples and
	// cardinality feedback.
	b.Run("optimize=on", func(b *testing.B) {
		runFigure1(b, optique.Config{Nodes: 1, Optimize: true})
	})
	b.Run("analyze=on", func(b *testing.B) {
		runFigure1(b, optique.Config{Nodes: 1, Analyze: true})
	})
	// The transport dimension prices the framed TCP node transport over
	// loopback — length-prefixed checksummed frames, per-session seqs,
	// acks, heartbeats — against the in-process channel hop (plancache=on
	// doubles as the transport=channel baseline). The acceptance bar is
	// ≤15% ingest overhead over that baseline.
	b.Run("transport=tcp", func(b *testing.B) {
		runFigure1(b, optique.Config{Nodes: 1, Transport: cluster.TransportTCP})
	})
	// The windowexec dimension isolates the window-execution path: the
	// task's unfolded low-level fleet (Translation.StreamFleet — what the
	// paper's engineers wrote by hand) registered directly on one
	// ExaStream engine, with no cluster queue and no STARQL sequence
	// matcher in front, so ns/op is dominated by per-window plan cost.
	// "interpreted" reproduces the pre-compile-once pipeline: plans
	// rebuilt every window, expressions tree-walked per row.
	// "vectorized" is the columnar batch path (the default); "compiled"
	// pins the tuple-at-a-time row path it replaced, so the pair is the
	// vectorization ablation.
	b.Run("windowexec/pipeline=vectorized", func(b *testing.B) {
		runFigure1WindowExec(b, exastream.Options{ShareWindows: true})
	})
	b.Run("windowexec/pipeline=compiled", func(b *testing.B) {
		runFigure1WindowExec(b, exastream.Options{
			ShareWindows: true, Vectorized: exastream.VecOff,
		})
	})
	b.Run("windowexec/pipeline=interpreted", func(b *testing.B) {
		runFigure1WindowExec(b, exastream.Options{
			ShareWindows: true, DisablePlanCache: true, InterpretExprs: true,
			Vectorized: exastream.VecOff,
		})
	})
}

func runFigure1WindowExec(b *testing.B, opts exastream.Options) {
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		b.Fatal(err)
	}
	tr := starql.NewTranslator(siemens.TBox(), siemens.Mappings(), cat)
	task, _ := siemens.TaskByID("T01_mon_temperature")
	q, err := starql.Parse(task.Query)
	if err != nil {
		b.Fatal(err)
	}
	tl, err := tr.Translate(q, starql.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if len(tl.StreamFleet) == 0 {
		b.Fatal("empty stream fleet")
	}
	e := exastream.NewEngine(cat, opts)
	for _, sc := range siemens.StreamSchemas() {
		if err := e.DeclareStream(sc); err != nil {
			b.Fatal(err)
		}
	}
	for i, stmt := range tl.StreamFleet {
		if err := e.Register(fmt.Sprintf("f%04d", i), stmt, tl.Pulse, nil); err != nil {
			b.Fatal(err)
		}
	}
	events := gen.PlantDefaultEvents(0, 30_000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 30_000, StepMS: 500,
		Sensors: gen.SensorsOfTurbine(0), Events: events, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(tuples)
		el := tuples[j]
		el.TS += int64(i/len(tuples)) * 30_000
		el.Row = el.Row.Clone()
		el.Row[1] = relation.Time(el.TS)
		if err := e.Ingest(siemens.RouteName(routes[j]), el); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	st := e.Stats()
	if st.WindowsExecuted == 0 {
		b.Fatal("no windows executed")
	}
}

func runFigure1(b *testing.B, cfg optique.Config) {
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := optique.NewSystem(cfg, siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			b.Fatal(err)
		}
	}
	task, _ := siemens.TaskByID("T01_mon_temperature")
	var alerts int64
	if _, err := sys.RegisterTask(task.ID, task.Query,
		func(string, int64, []rdf.Triple) { atomic.AddInt64(&alerts, 1) }); err != nil {
		b.Fatal(err)
	}
	events := gen.PlantDefaultEvents(0, 30_000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 30_000, StepMS: 500,
		Sensors: gen.SensorsOfTurbine(0), Events: events, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(tuples)
		el := tuples[j]
		el.TS += int64(i/len(tuples)) * 30_000 // keep time advancing across laps
		el.Row = el.Row.Clone()
		el.Row[1] = relation.Time(el.TS)
		if err := sys.Ingest(siemens.RouteName(routes[j]), el); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := sys.Flush(); err != nil {
		b.Fatal(err)
	}
}

// ---- E2: gateway registration ----

// BenchmarkGatewayRegistration measures asynchronous query registration
// through the Figure 2 gateway → parser → scheduler path.
func BenchmarkGatewayRegistration(b *testing.B) {
	cat := relation.NewCatalog()
	cl, err := cluster.New(cluster.Options{Nodes: 4},
		func(int) *relation.Catalog { return cat })
	if err != nil {
		b.Fatal(err)
	}
	defer func() { cl.Gateway().Close(); cl.Close() }()
	if err := cl.DeclareStream(benchStreamSchema()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := cl.Gateway().Submit(fmt.Sprintf("q%d", i),
			fmt.Sprintf("SELECT w.val FROM STREAM m [RANGE 1000 SLIDE 1000] AS w WHERE w.sid = %d", i%512),
			nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStreamSchema() stream.Schema {
	return stream.Schema{
		Name: "m",
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat)),
		TSCol: "ts",
	}
}

// ---- E3: enrich+unfold a catalog task into its fleet ----

// BenchmarkUnfoldFleet measures the translation pipeline (parse →
// enrich → unfold) for the Figure 1 catalog task.
func BenchmarkUnfoldFleet(b *testing.B) {
	gen, _ := siemens.New(siemens.SmallConfig())
	cat, err := gen.StaticCatalog()
	if err != nil {
		b.Fatal(err)
	}
	tr := starql.NewTranslator(siemens.TBox(), siemens.Mappings(), cat)
	task, _ := siemens.TaskByID("T01_mon_temperature")
	q, err := starql.Parse(task.Query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(q, starql.Options{SkipStreamFleet: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4: concurrent diagnostic tasks ----

// BenchmarkConcurrentTasks sweeps the number of concurrently registered
// window queries and reports ingest cost per tuple (the paper ran up to
// 1,024 concurrent tasks).
func BenchmarkConcurrentTasks(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			cat := relation.NewCatalog()
			cl, err := cluster.New(cluster.Options{
				Nodes: 8, PartitionColumn: "sid",
				Engine: exastream.Options{ShareWindows: true},
			}, func(int) *relation.Catalog { return cat })
			if err != nil {
				b.Fatal(err)
			}
			defer func() { cl.Gateway().Close(); cl.Close() }()
			if err := cl.DeclareStream(benchStreamSchema()); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				q := sql.MustParse(fmt.Sprintf(
					"SELECT w.sid, avg(w.val) FROM STREAM m [RANGE 1000 SLIDE 1000] AS w WHERE w.sid = %d GROUP BY w.sid", i%256))
				if _, err := cl.Register(fmt.Sprintf("q%04d", i), q, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i/256) * 10
				el := stream.Timestamped{TS: ts, Row: relation.Tuple{
					relation.Int(int64(i % 256)), relation.Time(ts), relation.Float(float64(i % 100))}}
				if err := cl.Ingest("m", el); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := cl.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---- E5: node scaling ----

// BenchmarkNodeScaling fixes the workload (128 per-sensor queries) and
// sweeps the cluster size; cmd/optique-bench extends the sweep to 128
// nodes.
func BenchmarkNodeScaling(b *testing.B) {
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			cat := relation.NewCatalog()
			cl, err := cluster.New(cluster.Options{
				Nodes: nodes, PartitionColumn: "sid",
				Engine: exastream.Options{ShareWindows: true},
			}, func(int) *relation.Catalog { return cat })
			if err != nil {
				b.Fatal(err)
			}
			defer func() { cl.Gateway().Close(); cl.Close() }()
			if err := cl.DeclareStream(benchStreamSchema()); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 128; i++ {
				q := sql.MustParse(fmt.Sprintf(
					"SELECT w.sid, avg(w.val) FROM STREAM m [RANGE 1000 SLIDE 1000] AS w WHERE w.sid = %d GROUP BY w.sid", i%256))
				if _, err := cl.Register(fmt.Sprintf("q%04d", i), q, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i/256) * 10
				el := stream.Timestamped{TS: ts, Row: relation.Tuple{
					relation.Int(int64(i % 256)), relation.Time(ts), relation.Float(float64(i % 100))}}
				if err := cl.Ingest("m", el); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := cl.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---- E6: bootstrapping ----

// BenchmarkBootstrap measures BootOX's direct bootstrapper over a
// 24-table schema.
func BenchmarkBootstrap(b *testing.B) {
	schema := bootstrap.Schema{
		BaseIRI: siemens.NS, DataIRI: siemens.DataNS,
	}
	for i := 0; i < 20; i++ {
		schema.Tables = append(schema.Tables, bootstrap.Table{
			Name: fmt.Sprintf("hist_%d", i), PrimaryKey: "rid",
			Columns: []bootstrap.Column{
				{Name: "rid", Type: relation.TInt},
				{Name: "sid", Type: relation.TInt},
				{Name: "avg_val", Type: relation.TFloat}},
		})
	}
	schema.Tables = append(schema.Tables,
		bootstrap.Table{Name: "a_turbines", PrimaryKey: "tid", Columns: []bootstrap.Column{
			{Name: "tid", Type: relation.TInt}, {Name: "model", Type: relation.TString}}},
		bootstrap.Table{Name: "a_sensors", PrimaryKey: "sid", Columns: []bootstrap.Column{
			{Name: "sid", Type: relation.TInt}, {Name: "tid", Type: relation.TInt},
			{Name: "kind", Type: relation.TString}}},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bootstrap.Direct(schema); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: enrichment scales with the TBox ----

// BenchmarkEnrichment sweeps class-hierarchy depth: PerfectRef must stay
// polynomial (the paper's claim for OWL 2 QL).
func BenchmarkEnrichment(b *testing.B) {
	for _, depth := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			tb := ontology.New()
			for i := 0; i < depth; i++ {
				tb.AddConceptInclusion(
					ontology.Named(fmt.Sprintf("L%d", i+1)),
					ontology.Named(fmt.Sprintf("L%d", i)))
			}
			q := cq.New([]string{"x"}, cq.ClassAtom("L0", cq.V("x")))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := rewrite.PerfectRef(q, tb, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E8: unfolding scales with the mapping count ----

// BenchmarkUnfolding sweeps the number of mappings per predicate; the
// paper claims linear-time unfolding in mappings × query.
func BenchmarkUnfolding(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("mappings=%d", n), func(b *testing.B) {
			var ms []mapping.Mapping
			for i := 0; i < n; i++ {
				ms = append(ms, mapping.Mapping{
					ID: fmt.Sprintf("m%d", i), Pred: "C", IsClass: true,
					Subject: mapping.MustParseTemplate(fmt.Sprintf("http://e/%d/{id}", i)),
					Source:  mapping.SourceRef{Table: fmt.Sprintf("t%d", i)},
				})
			}
			set := mapping.MustNewSet(ms...)
			u := cq.UCQ{cq.New([]string{"x"}, cq.ClassAtom("C", cq.V("x")))}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := mapping.Unfold(u, set, mapping.UnfoldOptions{MaxCombinations: 100000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E9: adaptive indexing ablation ----

// BenchmarkAdaptiveIndex joins every window batch against a large static
// table, with and without adaptive indexing.
func BenchmarkAdaptiveIndex(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "off"
		if adaptive {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cat := relation.NewCatalog()
			sensors, err := cat.Create("sensors", relation.NewSchema(
				relation.Col("sid", relation.TInt),
				relation.Col("kind", relation.TString)))
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 20_000; i++ {
				sensors.MustInsert(relation.Tuple{relation.Int(i), relation.String_("temp")})
			}
			e := exastream.NewEngine(cat, exastream.Options{
				AdaptiveIndexing: adaptive, AdaptiveThreshold: 2,
			})
			if err := e.DeclareStream(benchStreamSchema()); err != nil {
				b.Fatal(err)
			}
			q := sql.MustParse(`SELECT w.sid, s.kind FROM STREAM m [RANGE 100 SLIDE 100] AS w, sensors AS s WHERE w.sid = s.sid`)
			if err := e.Register("join", q, nil, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i) * 10
				el := stream.Timestamped{TS: ts, Row: relation.Tuple{
					relation.Int(int64(i % 20_000)), relation.Time(ts), relation.Float(1)}}
				if err := e.Ingest("m", el); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E10: LSH vs exact correlation ----

// BenchmarkLSHCorrelation compares LSH candidate generation + exact
// verification against the all-pairs baseline on 500 sensor windows.
func BenchmarkLSHCorrelation(b *testing.B) {
	const dim = 64
	rng := rand.New(rand.NewSource(5))
	series := make(map[int][]float64, 500)
	for id := 0; id < 500; id++ {
		s := make([]float64, dim)
		base := rng.NormFloat64()
		for i := range s {
			if id%50 == 0 { // every 50th sensor shares a ramp
				s[i] = float64(i) + rng.NormFloat64()*0.1
			} else {
				s[i] = base + rng.NormFloat64()
			}
		}
		series[id] = s
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lsh.ExactPairs(series, 0.95)
		}
	})
	b.Run("lsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := lsh.New(lsh.Config{Bits: 96, Bands: 12, Dim: dim, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			for id, s := range series {
				if _, err := ix.Add(id, s); err != nil {
					b.Fatal(err)
				}
			}
			ix.CorrelatedPairs(0.95)
		}
	})
}

// ---- E11: wCache window sharing ----

// BenchmarkWCache runs 32 same-window queries either on one engine
// (shared windowing pass) or on 32 engines (one pass each).
func BenchmarkWCache(b *testing.B) {
	const queries = 32
	mkQuery := func(i int) *sql.SelectStmt {
		return sql.MustParse(fmt.Sprintf(
			"SELECT w.val FROM STREAM m [RANGE 1000 SLIDE 1000] AS w WHERE w.sid = %d", i))
	}
	b.Run("shared", func(b *testing.B) {
		cat := relation.NewCatalog()
		e := exastream.NewEngine(cat, exastream.Options{ShareWindows: true})
		if err := e.DeclareStream(benchStreamSchema()); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < queries; i++ {
			if err := e.Register(fmt.Sprintf("q%d", i), mkQuery(i), nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts := int64(i) * 10
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i % queries)), relation.Time(ts), relation.Float(1)}}
			if err := e.Ingest("m", el); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unshared", func(b *testing.B) {
		var engines []*exastream.Engine
		for i := 0; i < queries; i++ {
			e := exastream.NewEngine(relation.NewCatalog(), exastream.Options{})
			if err := e.DeclareStream(benchStreamSchema()); err != nil {
				b.Fatal(err)
			}
			if err := e.Register("q", mkQuery(i), nil, nil); err != nil {
				b.Fatal(err)
			}
			engines = append(engines, e)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts := int64(i) * 10
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i % queries)), relation.Time(ts), relation.Float(1)}}
			for _, e := range engines {
				if err := e.Ingest("m", el); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ---- E12: unfolded-fleet plan optimisation ablation ----

// BenchmarkUnfoldOptimization executes a redundant unfolded union
// (duplicate branches, cross joins with filters) with and without the
// optimiser.
func BenchmarkUnfoldOptimization(b *testing.B) {
	cat := relation.NewCatalog()
	t1, err := cat.Create("t1", relation.NewSchema(
		relation.Col("id", relation.TInt), relation.Col("k", relation.TInt)))
	if err != nil {
		b.Fatal(err)
	}
	t2, err := cat.Create("t2", relation.NewSchema(
		relation.Col("id", relation.TInt), relation.Col("v", relation.TFloat)))
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 800; i++ {
		t1.MustInsert(relation.Tuple{relation.Int(i), relation.Int(i % 7)})
		t2.MustInsert(relation.Tuple{relation.Int(i), relation.Float(float64(i))})
	}
	// A redundant union of identical join branches, written as cross
	// joins with WHERE equalities — the shape unfolding produces.
	branch := "SELECT a.id FROM t1 AS a, t2 AS b WHERE a.id = b.id AND a.k = 3"
	query := branch + " UNION " + branch + " UNION " + branch
	stmt := sql.MustParse(query)
	resolver := engine.CatalogResolver(cat)

	b.Run("optimized", func(b *testing.B) {
		plan, err := engine.Build(stmt, resolver)
		if err != nil {
			b.Fatal(err)
		}
		ctx := engine.NewExecContext(cat)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		plan, err := engine.BuildUnoptimized(stmt, resolver)
		if err != nil {
			b.Fatal(err)
		}
		ctx := engine.NewExecContext(cat)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
